//! The sharded storage engine: `N` per-shard [`SudokuCache`]s plus a
//! cross-shard Hash-2 coordinator.
//!
//! Sharding follows [`ShardPlan`]: Hash-1 RAID-Groups round-robin over
//! shards, so every Hash-1 repair (ECC-1, CRC detect, RAID-4, SDR) touches
//! exactly one shard, while every Hash-2 group spans several shards — the
//! SuDoku-Z dimension is inherently a cross-shard protocol. Each shard is
//! a full-geometry sparse [`SudokuCache`] with
//! [`SudokuConfig::with_deferred_hash2`] set: the shard still maintains
//! its slice of the Hash-2 PLT on writes (parity is linear, so the global
//! Hash-2 parity of a group is the XOR of the per-shard slices), but its
//! *own* recovery ladder stops after Hash-1. Whatever a shard cannot
//! resolve locally escalates to the coordinator, which gathers the Hash-2
//! group's members from their owning shards and drives the exact same
//! [`RepairEngine`] the single-threaded cache uses.
//!
//! The deterministic whole-cache scrub ([`ShardedCache::scrub_lines`])
//! replicates the reference fixpoint schedule — alternating a parallel
//! shard-local Hash-1 pass with a coordinator-sequential Hash-2 pass until
//! no progress — so recovery outcomes, [`ScrubReport`]s, and `CacheStats`
//! totals are invariant in the shard count (property-tested for
//! N ∈ {1, 2, 4, 8}).
//!
//! # Degraded mode
//!
//! The engine survives two kinds of damage instead of panicking:
//!
//! * **Shard loss.** A poisoned shard mutex (a thread panicked mid-repair)
//!   quarantines the shard: demand requests to it fail fast with
//!   [`ServiceError::ShardDown`], scrubs and escalations run over the
//!   surviving N−1 shards, and cross-shard Hash-2 recovery — which needs
//!   every shard's parity slice — is skipped (counted, and the implicated
//!   lines become honest DUEs rather than wrong data).
//! * **Permanent faults.** An optional [`StuckBitMap`] (the physics
//!   harness of [`VminCache`]) re-corrupts stuck cells after every write
//!   and repair write-back. Lines that keep coming back — repeated DUEs,
//!   or group reconstructions the stuck cells immediately undo (an SDR
//!   resurrection that can never converge) — are remapped to a small
//!   per-shard spare pool instead of being repaired forever.
//!
//! [`VminCache`]: sudoku_core::VminCache

use crate::degraded::{DegradedConfig, DegradedStats, ShardHealth, SpareTable};
use crate::error::ServiceError;
use crate::view::{LineView, ViewRead};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use sudoku_codes::{LineCodec, LineData, ProtectedLine};
use sudoku_core::{
    reassert_stuck, CacheStats, ConfigError, GroupScratch, GroupView, HashDim, LineStore,
    MemberState, Recorder, RepairEngine, RepairParams, ScrubReport, ShardPlan, SparseStore,
    SudokuCache, SudokuConfig, UncorrectableError,
};
use sudoku_fault::{FaultInjector, StuckBitMap};

/// Lines per shard-mutex hold in the daemon's bulk passes (fault
/// injection, scrub scan). A tick can touch hundreds of lines; taking the
/// lock in chunks keeps the demand path's worst-case wait at one chunk
/// instead of one whole tick.
const DAEMON_LOCK_CHUNK: usize = 32;

/// Cross-shard recovery state owned by the coordinator: its own counter
/// pool, recorder, and scratch buffers, so Hash-2 accounting is attributed
/// to the coordinator rather than to any one shard.
struct Coordinator {
    stats: CacheStats,
    recorder: Recorder,
    scratch: GroupScratch,
}

/// Per-shard degraded-mode state: the sparing table plus stuck-cell
/// accounting. Guarded by its own mutex, acquired only *after* the shard's
/// cache mutex (never while waiting on one) — a strict shard → extra
/// order, so it cannot deadlock against recovery.
struct ShardExtra {
    spares: SpareTable,
    stuck_reasserts: u64,
    undone_reconstructions: u64,
}

/// Per-call recovery state of one shard during a scrub or escalation.
#[derive(Default)]
struct ScrubState {
    hints: Vec<u64>,
    faulty: BTreeSet<u64>,
    recovered: BTreeMap<u64, ProtectedLine>,
    report: ScrubReport,
    /// Every line this pass may have mutated — republished into the
    /// lock-free [`LineView`] before the shard locks drop.
    touched: BTreeSet<u64>,
}

/// One shard's cache plus its in-flight recovery state, borrowed out of
/// the shard mutexes for the duration of a scrub.
struct Working<'a> {
    cache: &'a mut SudokuCache<SparseStore>,
    st: ScrubState,
}

/// A Hash-2 group's members gathered from their owning shards — the
/// [`GroupView`] the coordinator drives the shared repair engine over.
/// Parity is the XOR of the per-shard Hash-2 PLT slices (linearity);
/// reconstructions commit into the owning shard's store and recovered map.
/// Only constructed when every shard is up (a quarantined shard's parity
/// slice is unavailable, so H2 gathering would be unsound).
struct GatherView<'a, 'b> {
    plan: &'a ShardPlan,
    work: &'a mut [Option<Working<'b>>],
    members: &'a [u64],
    parity: ProtectedLine,
}

impl GatherView<'_, '_> {
    fn slot(&self, line: u64) -> &Working<'_> {
        self.work[self.plan.shard_of_line(line)]
            .as_ref()
            .expect("H2 gathering requires every shard up")
    }
}

impl GroupView for GatherView<'_, '_> {
    fn len(&self) -> usize {
        self.members.len()
    }

    fn line_id(&self, i: usize) -> u64 {
        self.members[i]
    }

    fn state(&self, i: usize) -> MemberState {
        let m = self.members[i];
        let w = self.slot(m);
        if let Some(&r) = w.st.recovered.get(&m) {
            MemberState::Recovered(r)
        } else if !w.cache.store().is_materialized(m) {
            MemberState::Zero
        } else {
            MemberState::Stored(w.cache.stored_line(m))
        }
    }

    fn commit_repair(&mut self, i: usize, line: ProtectedLine) {
        let m = self.members[i];
        let w = self.work[self.plan.shard_of_line(m)]
            .as_mut()
            .expect("H2 gathering requires every shard up");
        w.cache.set_stored_line(m, line);
    }

    fn commit_reconstruction(&mut self, i: usize, line: ProtectedLine) {
        let m = self.members[i];
        let w = self.work[self.plan.shard_of_line(m)]
            .as_mut()
            .expect("H2 gathering requires every shard up");
        w.cache.set_stored_line(m, line);
        w.st.recovered.insert(m, line);
    }

    fn parity(&self) -> ProtectedLine {
        self.parity
    }
}

/// Merges per-shard and coordinator [`ScrubReport`]s into the global view
/// a single-threaded scrub would have produced: counters sum, unresolved
/// lines concatenate and sort ascending.
pub fn merge_reports<'a>(reports: impl IntoIterator<Item = &'a ScrubReport>) -> ScrubReport {
    let mut out = ScrubReport::default();
    for r in reports {
        out.lines_checked += r.lines_checked;
        out.ecc1_repairs += r.ecc1_repairs;
        out.meta_repairs += r.meta_repairs;
        out.multibit_lines += r.multibit_lines;
        out.raid4_repairs += r.raid4_repairs;
        out.sdr_repairs += r.sdr_repairs;
        out.hash2_repairs += r.hash2_repairs;
        out.unresolved.extend_from_slice(&r.unresolved);
    }
    out.unresolved.sort_unstable();
    out
}

/// A SuDoku cache partitioned into `N` concurrent shards.
///
/// Thread-safe by construction: shards sit behind their own mutexes
/// (demand traffic on different shards never contends), and cross-shard
/// work acquires shard locks in ascending index order, then the
/// coordinator — a total order, so concurrent escalations cannot deadlock.
///
/// # Examples
///
/// ```
/// use sudoku_core::{Scheme, SudokuConfig};
/// use sudoku_svc::ShardedCache;
///
/// let config = SudokuConfig::small(Scheme::Z, 256, 16);
/// let cache = ShardedCache::new(config, 4)?;
/// // Fully overlapping double faults defeat Hash-1 SDR; the cross-shard
/// // Hash-2 coordinator resolves them.
/// for line in [4u64, 5] {
///     cache.inject_fault(line, 100);
///     cache.inject_fault(line, 200);
/// }
/// let report = cache.scrub_lines(&[4, 5]);
/// assert!(report.fully_repaired());
/// assert!(report.hash2_repairs >= 1);
/// # Ok::<(), sudoku_core::ConfigError>(())
/// ```
pub struct ShardedCache {
    plan: ShardPlan,
    config: SudokuConfig,
    shards: Vec<Mutex<SudokuCache<SparseStore>>>,
    coord: Mutex<Coordinator>,
    health: ShardHealth,
    extras: Vec<Mutex<ShardExtra>>,
    stuck: StuckBitMap,
    rejects: AtomicU64,
    skipped_h2: AtomicU64,
    /// Seqlock-stamped mirror of every stored line for lock-free clean
    /// reads; `None` when the geometry is too large to mirror.
    view: Option<LineView>,
}

impl ShardedCache {
    /// Builds an `n_shards`-way sharded cache over `config`'s geometry,
    /// with no permanent faults and the default sparing policy.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] from validation, including
    /// [`ConfigError::BadShardCount`] when the Hash-1 groups cannot be
    /// divided among `n_shards`.
    pub fn new(config: SudokuConfig, n_shards: usize) -> Result<Self, ConfigError> {
        Self::with_faults(
            config,
            n_shards,
            StuckBitMap::new(),
            DegradedConfig::default(),
        )
    }

    /// Builds a sharded cache over an array with permanent (stuck-at)
    /// cells: `stuck` plays the physics role it plays for
    /// [`VminCache`](sudoku_core::VminCache) — after every write and every
    /// repair write-back, the stuck cells reassert their values — and
    /// `degraded` sets the line-sparing policy for cells the ladder keeps
    /// re-repairing.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] exactly like [`ShardedCache::new`].
    pub fn with_faults(
        config: SudokuConfig,
        n_shards: usize,
        stuck: StuckBitMap,
        degraded: DegradedConfig,
    ) -> Result<Self, ConfigError> {
        let plan = ShardPlan::new(&config, n_shards)?;
        let shard_config = config.with_deferred_hash2();
        let shards = (0..n_shards)
            .map(|_| SudokuCache::new_sparse(shard_config).map(Mutex::new))
            .collect::<Result<Vec<_>, _>>()?;
        let extras = (0..n_shards)
            .map(|_| {
                Mutex::new(ShardExtra {
                    spares: SpareTable::new(degraded),
                    stuck_reasserts: 0,
                    undone_reconstructions: 0,
                })
            })
            .collect();
        let view = LineView::new(config.geometry.lines(), n_shards);
        Ok(ShardedCache {
            plan,
            config,
            shards,
            coord: Mutex::new(Coordinator {
                stats: CacheStats::default(),
                recorder: Recorder::ring(4096),
                scratch: GroupScratch::default(),
            }),
            health: ShardHealth::new(n_shards),
            extras,
            stuck,
            rejects: AtomicU64::new(0),
            skipped_h2: AtomicU64::new(0),
            view,
        })
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.plan.n_shards()
    }

    /// The shard partitioning in use.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The (non-deferred) cache configuration the shards were built from.
    pub fn config(&self) -> &SudokuConfig {
        &self.config
    }

    /// Shard liveness, shared with workers, the scrub daemon, and handles.
    pub fn health(&self) -> &ShardHealth {
        &self.health
    }

    /// The permanent-fault map the array was built with (physics, not
    /// controller state).
    pub fn stuck_map(&self) -> &StuckBitMap {
        &self.stuck
    }

    /// Counts one fail-fast rejection of a request to a quarantined shard.
    pub(crate) fn note_reject(&self) {
        self.rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// Acquires `shard`'s cache for a demand operation: fails fast when the
    /// shard is quarantined, and quarantines it on the spot when its mutex
    /// turns out to be poisoned (a thread panicked mid-operation).
    fn lock_shard(
        &self,
        shard: usize,
    ) -> Result<MutexGuard<'_, SudokuCache<SparseStore>>, ServiceError> {
        if !self.health.is_up(shard) {
            self.note_reject();
            return Err(ServiceError::ShardDown(shard));
        }
        match self.shards[shard].lock() {
            Ok(guard) => Ok(guard),
            Err(_) => {
                self.health.quarantine(shard);
                Err(ServiceError::ShardDown(shard))
            }
        }
    }

    /// Telemetry-path lock: counters and stored lines of a quarantined (or
    /// poison-locked) shard are still worth harvesting — plain `u64`s and
    /// line words cannot be torn by an unwinding panic.
    fn lock_shard_telemetry(&self, shard: usize) -> MutexGuard<'_, SudokuCache<SparseStore>> {
        self.shards[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_extra(&self, shard: usize) -> MutexGuard<'_, ShardExtra> {
        self.extras[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_coord(&self) -> MutexGuard<'_, Coordinator> {
        self.coord.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Reasserts the stuck cells of `line` after a write or repair
    /// write-back, charging the flipped bits to `shard`'s counters.
    fn reassert_line(&self, cache: &mut SudokuCache<SparseStore>, shard: usize, line: u64) {
        if self.stuck.is_stuck(line) {
            let changed = reassert_stuck(cache, &self.stuck, line) as u64;
            if changed > 0 {
                self.lock_extra(shard).stuck_reasserts += changed;
            }
        }
    }

    /// Reasserts every stuck line owned by `shard` (the post-scrub physics
    /// step). Returns the number of stored bits flipped back.
    fn reassert_shard(&self, cache: &mut SudokuCache<SparseStore>, shard: usize) -> u64 {
        if self.stuck.is_empty() {
            return 0;
        }
        let mut changed = 0u64;
        for line in self.stuck.lines() {
            if self.plan.shard_of_line(line) == shard {
                changed += reassert_stuck(cache, &self.stuck, line) as u64;
            }
        }
        if changed > 0 {
            self.lock_extra(shard).stuck_reasserts += changed;
        }
        changed
    }

    /// Republishes `line`'s stored state into the lock-free view. Callers
    /// must hold the owning shard's mutex (the `cache` guard proves it).
    fn publish_line(&self, cache: &SudokuCache<SparseStore>, line: u64) {
        if let Some(view) = &self.view {
            view.publish(line, &cache.stored_line(line));
        }
    }

    /// Republishes `line`'s whole Hash-1 group (the lines a shard-local
    /// group recovery may have rewritten). Same lock requirement as
    /// [`ShardedCache::publish_line`].
    fn publish_h1_group(&self, cache: &SudokuCache<SparseStore>, line: u64) {
        if let Some(view) = &self.view {
            let hashes = self.plan.hashes();
            let group = hashes.group_of(HashDim::H1, line);
            for member in hashes.members(HashDim::H1, group) {
                view.publish(member, &cache.stored_line(member));
            }
        }
    }

    /// Permanently removes `line` from the lock-free view (it was remapped
    /// to a spare slot; the array copy is no longer authoritative).
    fn invalidate_view(&self, line: u64) {
        if let Some(view) = &self.view {
            view.invalidate(line);
        }
    }

    /// Adds every Hash-1 sibling of the given lines to the republish set
    /// (group recovery may rewrite any of them). No-op without a view.
    fn extend_touched_h1(&self, touched: &mut BTreeSet<u64>, lines: impl Iterator<Item = u64>) {
        if self.view.is_none() {
            return;
        }
        let hashes = self.plan.hashes();
        for line in lines {
            let group = hashes.group_of(HashDim::H1, line);
            touched.extend(hashes.members(HashDim::H1, group));
        }
    }

    /// Adds `shard`'s stuck lines to the republish set: the post-scrub
    /// reassert rewrites them outside any recovery bookkeeping.
    fn extend_touched_stuck(&self, touched: &mut BTreeSet<u64>, shard: usize) {
        if self.view.is_none() || self.stuck.is_empty() {
            return;
        }
        for line in self.stuck.lines() {
            if self.plan.shard_of_line(line) == shard {
                touched.insert(line);
            }
        }
    }

    /// Republishes every touched line while the shard guard is held.
    fn publish_touched(&self, cache: &SudokuCache<SparseStore>, touched: &BTreeSet<u64>) {
        if let Some(view) = &self.view {
            for &line in touched {
                view.publish(line, &cache.stored_line(line));
            }
        }
    }

    /// Adds every Hash-2 sibling of the currently-faulty lines to its
    /// owning shard's republish set (the coordinator's Hash-2 pass may
    /// commit repairs into any of them). Only meaningful with every shard
    /// up — exactly when the Hash-2 pass itself runs.
    fn distribute_h2_touched(&self, work: &mut [Option<Working<'_>>]) {
        let hashes = self.plan.hashes();
        let groups: BTreeSet<u64> = work
            .iter()
            .flatten()
            .flat_map(|w| w.st.faulty.iter())
            .map(|&l| hashes.group_of(HashDim::H2, l))
            .collect();
        let mut members: Vec<u64> = Vec::new();
        for group in groups {
            members.extend(hashes.members(HashDim::H2, group));
        }
        for line in members {
            if let Some(w) = work[self.plan.shard_of_line(line)].as_mut() {
                w.st.touched.insert(line);
            }
        }
    }

    /// Marks a write for `line` as accepted-but-not-applied: lock-free
    /// reads of the line miss until [`ShardedCache::retire_write`]
    /// balances this call, so a queued fire-and-forget write stays
    /// read-your-write consistent (the queue's FIFO order serves the read
    /// after the write). No-op without a view.
    pub(crate) fn begin_write(&self, line: u64) {
        if let Some(view) = &self.view {
            view.begin_write(line);
        }
    }

    /// Balances one [`ShardedCache::begin_write`] once the write has been
    /// applied and republished — or consumed by a teardown path that will
    /// never apply it. No-op without a view.
    pub(crate) fn retire_write(&self, line: u64) {
        if let Some(view) = &self.view {
            view.retire_write(line);
        }
    }

    /// Attempts a lock-free clean read of `line` via the seqlock view:
    /// `Some(data)` when the line is verifiably clean (CRC checked inline,
    /// or golden zero), `None` when the caller must take the locked path.
    /// The second element counts seqlock retries (for telemetry).
    pub fn try_read_clean(&self, line: u64) -> (Option<LineData>, u32) {
        let Some(view) = &self.view else {
            return (None, 0);
        };
        let shard = self.plan.shard_of_line(line);
        if !self.health.is_up(shard) {
            // Quarantine wins: the locked path owns the error reporting.
            return (None, 0);
        }
        match view.try_read(line, shard) {
            (ViewRead::Clean(data), retries) => (Some(data), retries),
            (ViewRead::Zero, retries) => (Some(LineData::zero()), retries),
            (ViewRead::Miss, retries) => (None, retries),
        }
    }

    /// Opens a per-shard demand session: the shard mutex held across a
    /// whole work packet, amortizing one lock acquire over many ops.
    ///
    /// # Errors
    ///
    /// [`ServiceError::ShardDown`] when the shard is quarantined (or its
    /// mutex is poisoned — it gets quarantined on the spot).
    pub fn session(&self, shard: usize) -> Result<ShardSession<'_>, ServiceError> {
        Ok(ShardSession {
            cache: self.lock_shard(shard)?,
            owner: self,
            shard,
        })
    }

    /// Writes `data` to `line` on its owning shard (or its spare-pool slot,
    /// when the line has been spared).
    ///
    /// # Errors
    ///
    /// [`ServiceError::ShardDown`] when the owning shard is quarantined.
    pub fn write(&self, line: u64, data: &LineData) -> Result<(), ServiceError> {
        let shard = self.plan.shard_of_line(line);
        self.session(shard)?.write(line, data);
        Ok(())
    }

    /// Reads `line` from its owning shard, escalating to cross-shard
    /// Hash-2 recovery when the shard-local (Hash-1-only) ladder fails.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Uncorrectable`] when even cross-shard recovery fails
    /// (a DUE), [`ServiceError::ShardDown`] when the owning shard is
    /// quarantined.
    pub fn read(&self, line: u64) -> Result<LineData, ServiceError> {
        match self.read_local(line) {
            Err(ServiceError::Uncorrectable(_)) => {
                // The owner gave up after Hash-1; gather the Hash-2 groups.
                self.escalate_fetch(line, 0)
            }
            other => other,
        }
    }

    /// Escalates `line` and returns its post-escalation value, captured
    /// *before* stuck cells reassert — a repaired demand read must return
    /// the repaired data even when the array copy immediately re-corrupts.
    ///
    /// `trace` (0 = untraced) is stamped into every [`RecoveryEvent`] the
    /// escalation emits — shard-local Hash-1 passes and the coordinator's
    /// Hash-2 pass alike — so `/traces.json` can tie a slow demand read to
    /// the exact recovery ladder it triggered.
    ///
    /// [`RecoveryEvent`]: sudoku_obs::RecoveryEvent
    pub(crate) fn escalate_fetch(&self, line: u64, trace: u64) -> Result<LineData, ServiceError> {
        self.escalate_inner(&[line], Some(line), trace)
            .1
            .expect("fetch result requested")
    }

    /// Reads `line` using only the owning shard's (Hash-1) ladder, without
    /// cross-shard escalation. The service worker uses this to count
    /// escalations explicitly; most callers want [`ShardedCache::read`].
    /// A spared line is served from the spare pool without touching the
    /// faulty array at all.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Uncorrectable`] when the shard-local ladder fails
    /// (or the line was spared after its data was already lost), and
    /// [`ServiceError::ShardDown`] when the owning shard is quarantined.
    pub fn read_local(&self, line: u64) -> Result<LineData, ServiceError> {
        let shard = self.plan.shard_of_line(line);
        self.session(shard)?.read(line)
    }

    /// Flips one stored bit of `line` — a transient fault. Works on
    /// quarantined shards too (faults are physics, not requests).
    pub fn inject_fault(&self, line: u64, bit: usize) {
        let mut cache = self.lock_shard_telemetry(self.plan.shard_of_line(line));
        cache.inject_fault(line, bit);
        // Mirror the corruption into the view: the lock-free path must see
        // the faulty bits (and miss on the CRC), never stale clean data.
        self.publish_line(&cache, line);
    }

    /// Applies a resolved fault plan (line, fault positions) as produced by
    /// [`FaultInjector::resolved_plan`], routing each line to its shard.
    pub fn apply_resolved_plan(&self, plan: &[(u64, Vec<usize>)]) {
        for (line, positions) in plan {
            let mut shard = self.lock_shard_telemetry(self.plan.shard_of_line(*line));
            for &pos in positions {
                shard.inject_fault(*line, pos);
            }
            self.publish_line(&shard, *line);
        }
    }

    /// Injects one scrub interval's worth of transient faults into the
    /// lines owned by `shard`, using the caller's (typically per-shard
    /// forked) injector. Returns the faulted lines — the scan hints for the
    /// following scrub tick. A quarantined shard is skipped (empty result).
    pub fn inject_shard(&self, shard: usize, injector: &mut FaultInjector) -> Vec<u64> {
        let plan = injector.resolved_plan(self.plan.owned_line_count(shard));
        let mut lines = Vec::with_capacity(plan.len());
        // Chunked lock holds: a tick can fault hundreds of lines, and
        // holding the shard mutex across all of them convoys the demand
        // path for the whole tick. Per-line atomicity is all the physics
        // needs — demand ops interleaving between chunks just see some
        // faults earlier than others.
        for chunk in plan.chunks(DAEMON_LOCK_CHUNK) {
            let Ok(mut cache) = self.lock_shard(shard) else {
                return lines;
            };
            for (idx, positions) in chunk {
                let line = self.plan.owned_line_at(shard, *idx);
                for &pos in positions {
                    cache.inject_fault(line, pos);
                }
                self.publish_line(&cache, line);
                lines.push(line);
            }
        }
        lines
    }

    /// The stored (possibly faulty) line at `line`.
    pub fn stored_line(&self, line: u64) -> ProtectedLine {
        self.lock_shard_telemetry(self.plan.shard_of_line(line))
            .stored_line(line)
    }

    /// Aggregate counters: the sum over all shards plus the coordinator —
    /// the pool a single-threaded cache would have accumulated alone.
    /// Quarantined shards' counters are still included (what survived).
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in 0..self.n_shards() {
            total.merge(self.lock_shard_telemetry(shard).stats());
            self.fold_view_stats(shard, &mut total);
        }
        total.merge(&self.lock_coord().stats);
        total
    }

    /// Per-shard counters (index = shard id), excluding the coordinator.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        (0..self.n_shards())
            .map(|s| {
                let mut stats = *self.lock_shard_telemetry(s).stats();
                self.fold_view_stats(s, &mut stats);
                stats
            })
            .collect()
    }

    /// Folds the lock-free view's read accounting for `shard` into
    /// `stats`: every lock-free hit was one `reads` (plus one `crc_checks`
    /// for non-zero lines) the reference would have counted under the
    /// lock, so aggregates stay bit-identical to the reference path.
    fn fold_view_stats(&self, shard: usize, stats: &mut CacheStats) {
        if let Some(view) = &self.view {
            stats.reads += view.reads(shard);
            stats.crc_checks += view.crc_checks(shard);
        }
    }

    /// The coordinator's own counters (cross-shard Hash-2 work).
    pub fn coordinator_stats(&self) -> CacheStats {
        self.lock_coord().stats
    }

    /// Per-shard spare-pool occupancy (lines currently remapped), for the
    /// live telemetry plane. Poison-tolerant like the other telemetry
    /// reads.
    pub fn spare_occupancy(&self) -> Vec<u64> {
        (0..self.n_shards())
            .map(|s| self.lock_extra(s).spares.spared_lines() as u64)
            .collect()
    }

    /// Aggregated degraded-mode counters: quarantine, sparing, stuck-cell
    /// physics, and skipped cross-shard escalations.
    pub fn degraded_stats(&self) -> DegradedStats {
        let mut out = DegradedStats {
            quarantined_shards: self.health.quarantined(),
            stuck_lines: self.stuck.faulty_lines() as u64,
            shard_down_rejects: self.rejects.load(Ordering::Relaxed),
            skipped_h2_escalations: self.skipped_h2.load(Ordering::Relaxed),
            ..DegradedStats::default()
        };
        for shard in 0..self.n_shards() {
            let extra = self.lock_extra(shard);
            out.spared_lines += extra.spares.spared_lines() as u64;
            out.spare_reads += extra.spares.spare_reads;
            out.spare_writes += extra.spares.spare_writes;
            out.strikes += extra.spares.strikes_recorded;
            out.spare_overflow += extra.spares.spare_overflow;
            out.stuck_reasserts += extra.stuck_reasserts;
            out.undone_reconstructions += extra.undone_reconstructions;
        }
        out
    }

    /// Harvests every shard's telemetry recorder (and the coordinator's)
    /// into `master`, leaving fresh ring recorders behind. Poisoned shards
    /// are harvested too — telemetry survives the panic.
    pub fn harvest_recorders(&self, master: &mut Recorder) {
        for shard in 0..self.n_shards() {
            let old = self
                .lock_shard_telemetry(shard)
                .set_recorder(Recorder::ring(4096));
            master.absorb(old);
        }
        let mut coord = self.lock_coord();
        let old = std::mem::replace(&mut coord.recorder, Recorder::ring(4096));
        master.absorb(old);
    }

    /// Chaos hook: panics on purpose — optionally while holding `shard`'s
    /// cache mutex, poisoning it the way a real mid-repair panic would.
    /// Used by the worker's `Request::Panic` injection and the chaos bin;
    /// never called on any production path.
    pub fn chaos_panic(&self, shard: usize, hold_lock: bool) -> ! {
        if hold_lock {
            let _guard = self.lock_shard_telemetry(shard);
            panic!("injected worker panic on shard {shard} (lock held)");
        }
        panic!("injected worker panic on shard {shard}");
    }

    /// Deterministic whole-service scrub of the listed lines (plus
    /// whatever group recovery pulls in), replicating the single-threaded
    /// [`SudokuCache::scrub_lines`] schedule exactly: scan, then alternate
    /// a parallel shard-local Hash-1 pass with a coordinator-sequential
    /// cross-shard Hash-2 pass until a fixpoint. Holds every shard lock
    /// for the duration — the stop-the-world reference path. Quarantined
    /// shards are skipped; their hinted lines come back unresolved.
    pub fn scrub_lines(&self, hints: &[u64]) -> ScrubReport {
        let mut guards = self.lock_up_shards();
        let all_up = guards.iter().all(Option::is_some);
        let mut work = Self::borrow_working(&mut guards);
        let mut down_report = ScrubReport::default();
        let mirror = self.view.is_some();
        for &line in hints {
            match work[self.plan.shard_of_line(line)].as_mut() {
                Some(w) => {
                    w.st.hints.push(line);
                    if mirror {
                        w.st.touched.insert(line);
                    }
                }
                None => down_report.unresolved.push(line),
            }
        }
        // Scan phase: per-line checks are line-local, so shards scan their
        // own hinted lines concurrently.
        std::thread::scope(|s| {
            for w in work.iter_mut().flatten() {
                s.spawn(move || {
                    w.st.faulty = w
                        .cache
                        .scrub_scan(w.st.hints.drain(..), true, &mut w.st.report);
                });
            }
        });
        // Everything recovery can rewrite from here: Hash-1 siblings of
        // the post-scan faulty lines, plus (when the cross-shard pass will
        // run) their Hash-2 groups. The faulty sets only shrink during the
        // fixpoint, so capturing now over-approximates safely.
        if mirror {
            for w in work.iter_mut().flatten() {
                let faulty: Vec<u64> = w.st.faulty.iter().copied().collect();
                self.extend_touched_h1(&mut w.st.touched, faulty.into_iter());
            }
            if all_up && self.config.scheme.second_hash_enabled() {
                self.distribute_h2_touched(&mut work);
            }
        }
        let coord_report = self.fixpoint(&mut work, all_up, true);
        for w in work.iter_mut().flatten() {
            w.st.report.unresolved = w.st.faulty.iter().copied().collect();
            let mut report = std::mem::take(&mut w.st.report);
            w.cache.finish_scrub(&mut report);
            w.st.report = report;
        }
        // Physics: stuck cells re-corrupt whatever the scrub wrote back.
        for (shard, w) in work.iter_mut().enumerate() {
            if let Some(w) = w {
                self.reassert_shard(w.cache, shard);
                self.extend_touched_stuck(&mut w.st.touched, shard);
                self.publish_touched(w.cache, &w.st.touched);
            }
        }
        self.finish_down_lines(&mut down_report);
        merge_reports(
            work.iter()
                .flatten()
                .map(|w| &w.st.report)
                .chain([&coord_report, &down_report]),
        )
    }

    /// Scrubs every line of the cache. Equivalent to
    /// [`ShardedCache::scrub_lines`] over `0..n_lines`.
    pub fn scrub(&self) -> ScrubReport {
        let all: Vec<u64> = (0..self.config.geometry.lines()).collect();
        self.scrub_lines(&all)
    }

    /// Shard-local scrub tick: scans the hinted lines owned by `shard` and
    /// runs the Hash-1-only recovery fixpoint inside that shard, without
    /// touching any other shard. Returns the tick's report and the lines
    /// the shard could **not** resolve locally — the caller escalates
    /// those via [`ShardedCache::escalate`]. No DUE accounting happens
    /// here; a line is only a DUE once escalation also fails. A
    /// quarantined shard returns an empty report and no leftovers.
    pub fn scrub_shard_local(&self, shard: usize, hints: &[u64]) -> (ScrubReport, Vec<u64>) {
        let mut report = ScrubReport::default();
        let owned: Vec<u64> = hints
            .iter()
            .copied()
            .filter(|&l| self.plan.shard_of_line(l) == shard && !self.is_spared(shard, l))
            .collect();
        let mut touched: BTreeSet<u64> = owned.iter().copied().collect();
        // The bulk scan runs in chunked lock holds (like fault injection):
        // single-bit repairs are per-line atomic, and a demand write that
        // slips between chunks just heals its line before the scan gets
        // there — the recovery fixpoint below re-verifies every survivor.
        let mut faulty = BTreeSet::new();
        for chunk in owned.chunks(DAEMON_LOCK_CHUNK) {
            let Ok(mut cache) = self.lock_shard(shard) else {
                return (ScrubReport::default(), Vec::new());
            };
            faulty.extend(cache.scrub_scan(chunk.iter().copied(), true, &mut report));
            // Repairs of scanned lines must reach the view before the next
            // chunk's lock gap, or lock-free reads keep missing on them.
            self.publish_touched(&cache, &chunk.iter().copied().collect());
        }
        let Ok(mut cache) = self.lock_shard(shard) else {
            return (ScrubReport::default(), Vec::new());
        };
        // Group recovery may rewrite any Hash-1 sibling of a faulty line;
        // capture the groups now (the faulty set only shrinks from here).
        self.extend_touched_h1(&mut touched, faulty.iter().copied());
        let mut recovered = BTreeMap::new();
        loop {
            if faulty.is_empty() {
                break;
            }
            let before = faulty.len();
            cache.recovery_pass(HashDim::H1, &mut faulty, &mut recovered, &mut report, true);
            if faulty.len() >= before {
                break;
            }
        }
        // Physics + non-convergence accounting: reconstructions of stuck
        // lines are immediately undone by the stuck cells — count them as
        // strikes (with the recovered data!) instead of looping forever.
        self.note_undone_reconstructions(shard, &recovered);
        self.reassert_shard(&mut cache, shard);
        self.extend_touched_stuck(&mut touched, shard);
        self.publish_touched(&cache, &touched);
        let leftover: Vec<u64> = faulty.into_iter().collect();
        report.unresolved = leftover.clone();
        (report, leftover)
    }

    /// Cross-shard escalation: re-verifies the given lines and drives the
    /// full Hash-1 + Hash-2 fixpoint over all *surviving* shards, with DUE
    /// accounting for whatever still cannot be repaired. This is the
    /// recovery of last resort behind failed demand reads and failed
    /// shard-local scrubs. With any shard quarantined the Hash-2 pass is
    /// skipped (its parity slice is unavailable), so the affected lines
    /// come back as honest DUEs instead of wrong data; lines owned by dead
    /// shards are unresolved immediately. Unresolved lines accumulate
    /// sparing strikes — repeatedly-DUE lines get remapped to the spare
    /// pool and stop consuming escalations.
    pub fn escalate(&self, lines: &[u64]) -> ScrubReport {
        self.escalate_inner(lines, None, 0).0
    }

    fn escalate_inner(
        &self,
        lines: &[u64],
        fetch: Option<u64>,
        trace: u64,
    ) -> (ScrubReport, Option<Result<LineData, ServiceError>>) {
        let mut guards = self.lock_up_shards();
        let all_up = guards.iter().all(Option::is_some);
        let mut work = Self::borrow_working(&mut guards);
        // Stamp the demand trace into every recorder this escalation can
        // emit through: each surviving shard's (Hash-1 passes) and the
        // coordinator's (Hash-2 pass). All shard locks are held for the
        // whole escalation, so no concurrent scrub can emit under the
        // stamp; it is cleared again before the locks drop.
        if trace != 0 {
            for w in work.iter_mut().flatten() {
                w.cache.recorder_mut().set_trace(trace);
            }
            self.lock_coord().recorder.set_trace(trace);
        }
        let mut down_report = ScrubReport::default();
        let mirror = self.view.is_some();
        for &line in lines {
            let shard = self.plan.shard_of_line(line);
            match work[shard].as_mut() {
                // A spared line is already remapped out of the array;
                // reads hit the pool, so there is nothing to escalate.
                Some(w) if !self.is_spared(shard, line) => {
                    w.st.faulty.insert(line);
                    if mirror {
                        // The re-verify may repair the seed in place.
                        w.st.touched.insert(line);
                    }
                }
                Some(_) => {}
                None => down_report.unresolved.push(line),
            }
        }
        // Seeds may have been healed (or cleanly overwritten) since the
        // caller saw them fail; keep only the still-multibit ones.
        let empty = BTreeMap::new();
        for w in work.iter_mut().flatten() {
            let mut faulty = std::mem::take(&mut w.st.faulty);
            w.cache.retain_multibit(&mut faulty, &empty);
            w.st.faulty = faulty;
        }
        if mirror {
            for w in work.iter_mut().flatten() {
                let faulty: Vec<u64> = w.st.faulty.iter().copied().collect();
                self.extend_touched_h1(&mut w.st.touched, faulty.into_iter());
            }
            if all_up && self.config.scheme.second_hash_enabled() {
                self.distribute_h2_touched(&mut work);
            }
        }
        let had_faulty = work.iter().flatten().any(|w| !w.st.faulty.is_empty());
        let coord_report = self.fixpoint(&mut work, all_up, true);
        if !all_up && had_faulty && self.config.scheme.second_hash_enabled() {
            self.skipped_h2.fetch_add(1, Ordering::Relaxed);
        }
        for w in work.iter_mut().flatten() {
            w.st.report.unresolved = w.st.faulty.iter().copied().collect();
            let mut report = std::mem::take(&mut w.st.report);
            w.cache.finish_scrub(&mut report);
            w.st.report = report;
        }
        // Capture the demand read's value now: the store holds whatever the
        // escalation repaired, and the stuck-cell reassert below is about
        // to undo that in the array (never in the returned data).
        let fetched = fetch.map(|line| {
            let shard = self.plan.shard_of_line(line);
            match work[shard].as_mut() {
                Some(w) => {
                    let spared = self.lock_extra(shard).spares.lookup(line);
                    match spared {
                        Some(Some(data)) => Ok(data),
                        Some(None) => Err(ServiceError::Uncorrectable(UncorrectableError { line })),
                        None => w.cache.read(line).map_err(ServiceError::from),
                    }
                }
                None => Err(ServiceError::ShardDown(shard)),
            }
        });
        // Physics, non-convergence, and repeated-DUE sparing strikes.
        for (shard, w) in work.iter_mut().enumerate() {
            if let Some(w) = w {
                self.note_undone_reconstructions(shard, &w.st.recovered);
                self.reassert_shard(w.cache, shard);
                if !w.st.report.unresolved.is_empty() {
                    let mut extra = self.lock_extra(shard);
                    for &line in &w.st.report.unresolved {
                        if extra.spares.strike(line, None) {
                            // Remapped: the array copy is dead to readers.
                            self.invalidate_view(line);
                        }
                    }
                }
                self.extend_touched_stuck(&mut w.st.touched, shard);
                self.publish_touched(w.cache, &w.st.touched);
            }
        }
        self.finish_down_lines(&mut down_report);
        if trace != 0 {
            for w in work.iter_mut().flatten() {
                w.cache.recorder_mut().set_trace(0);
            }
            self.lock_coord().recorder.set_trace(0);
        }
        let report = merge_reports(
            work.iter()
                .flatten()
                .map(|w| &w.st.report)
                .chain([&coord_report, &down_report]),
        );
        (report, fetched)
    }

    fn is_spared(&self, shard: usize, line: u64) -> bool {
        self.lock_extra(shard).spares.is_spared(line)
    }

    /// Strikes every reconstructed-but-stuck line: the write-back is about
    /// to be undone by the stuck cells, so the reconstruction did not
    /// converge. The recovered data rides along into the spare slot when
    /// the strike threshold is reached.
    fn note_undone_reconstructions(&self, shard: usize, recovered: &BTreeMap<u64, ProtectedLine>) {
        if self.stuck.is_empty() || recovered.is_empty() {
            return;
        }
        let mut extra = self.lock_extra(shard);
        for (&line, value) in recovered {
            if self.stuck.is_stuck(line) {
                extra.undone_reconstructions += 1;
                // When the threshold is reached the line is spared *with*
                // the reconstructed data — reads stop needing escalation.
                if extra.spares.strike(line, Some(value.data)) {
                    self.invalidate_view(line);
                }
            }
        }
    }

    /// Sorts/dedups the lines owned by dead shards and charges them to the
    /// coordinator's DUE counter (their own shard's counters are
    /// unreachable, but the loss must still be visible in `stats()`).
    fn finish_down_lines(&self, down_report: &mut ScrubReport) {
        if down_report.unresolved.is_empty() {
            return;
        }
        down_report.unresolved.sort_unstable();
        down_report.unresolved.dedup();
        self.lock_coord().stats.due_lines += down_report.unresolved.len() as u64;
    }

    /// Acquires every *up* shard's lock in ascending index order (the
    /// global lock order, followed by the coordinator — see
    /// [`ShardedCache`]). A quarantined or poison-locked shard yields
    /// `None` (and is quarantined if it was not already).
    fn lock_up_shards(&self) -> Vec<Option<MutexGuard<'_, SudokuCache<SparseStore>>>> {
        (0..self.n_shards())
            .map(|s| {
                if !self.health.is_up(s) {
                    return None;
                }
                match self.shards[s].lock() {
                    Ok(guard) => Some(guard),
                    Err(_) => {
                        self.health.quarantine(s);
                        None
                    }
                }
            })
            .collect()
    }

    fn borrow_working<'a, 'g>(
        guards: &'a mut [Option<MutexGuard<'g, SudokuCache<SparseStore>>>],
    ) -> Vec<Option<Working<'a>>> {
        guards
            .iter_mut()
            .map(|g| {
                g.as_mut().map(|g| Working {
                    cache: g,
                    st: ScrubState::default(),
                })
            })
            .collect()
    }

    /// The recovery fixpoint over pre-seeded per-shard faulty sets: each
    /// round runs the shard-local Hash-1 pass on every shard in parallel,
    /// then (for schemes with a second hash, when every shard is up) the
    /// coordinator's sequential Hash-2 pass over gathered cross-shard
    /// groups, stopping when a round makes no progress — the exact
    /// schedule of the single-threaded ladder, which is what makes
    /// recovery shard-count-invariant.
    fn fixpoint(&self, work: &mut [Option<Working<'_>>], all_up: bool, fast: bool) -> ScrubReport {
        let mut coord = self.lock_coord();
        let mut coord_report = ScrubReport::default();
        let use_h2 = all_up && self.config.scheme.second_hash_enabled();
        loop {
            let before: usize = work.iter().flatten().map(|w| w.st.faulty.len()).sum();
            if before == 0 {
                break;
            }
            std::thread::scope(|s| {
                for w in work.iter_mut().flatten() {
                    s.spawn(move || {
                        let mut faulty = std::mem::take(&mut w.st.faulty);
                        w.cache.recovery_pass(
                            HashDim::H1,
                            &mut faulty,
                            &mut w.st.recovered,
                            &mut w.st.report,
                            fast,
                        );
                        w.st.faulty = faulty;
                    });
                }
            });
            if use_h2 && work.iter().flatten().any(|w| !w.st.faulty.is_empty()) {
                self.h2_pass(&mut coord, work, &mut coord_report, fast);
                for w in work.iter_mut().flatten() {
                    let mut faulty = std::mem::take(&mut w.st.faulty);
                    let recovered = std::mem::take(&mut w.st.recovered);
                    w.cache.retain_multibit(&mut faulty, &recovered);
                    w.st.recovered = recovered;
                    w.st.faulty = faulty;
                }
            }
            let after: usize = work.iter().flatten().map(|w| w.st.faulty.len()).sum();
            if after >= before {
                break;
            }
        }
        coord_report
    }

    /// One coordinator Hash-2 pass: repair every implicated cross-shard
    /// group in ascending group order, gathering members and parity slices
    /// from the owning shards. Only called with every shard up.
    fn h2_pass(
        &self,
        coord: &mut Coordinator,
        work: &mut [Option<Working<'_>>],
        report: &mut ScrubReport,
        fast: bool,
    ) {
        let hashes = self.plan.hashes();
        let groups: BTreeSet<u64> = work
            .iter()
            .flatten()
            .flat_map(|w| w.st.faulty.iter())
            .map(|&l| hashes.group_of(HashDim::H2, l))
            .collect();
        for group in groups {
            let members: Vec<u64> = hashes.members(HashDim::H2, group).collect();
            let mut parity = ProtectedLine::zero();
            for w in work.iter().flatten() {
                parity.xor_assign(&w.cache.group_parity(HashDim::H2, group));
            }
            let mut view = GatherView {
                plan: &self.plan,
                work,
                members: &members,
                parity,
            };
            let mut engine = RepairEngine {
                codec: LineCodec::shared(),
                params: RepairParams::from_config(&self.config),
                stats: &mut coord.stats,
                recorder: &mut coord.recorder,
            };
            engine.repair_group(
                HashDim::H2,
                group,
                &mut view,
                &mut coord.scratch,
                report,
                fast,
            );
        }
    }
}

/// A demand session holding one shard's cache mutex across a whole work
/// packet: `N` reads/writes pay for one lock acquire. Created by
/// [`ShardedCache::session`]; dropping it releases the shard.
///
/// The session holds **only** the shard cache guard — spare-table and
/// stuck-cell bookkeeping take their own (transient, strictly-after)
/// locks per op, and cross-shard escalation requires dropping the session
/// first (it acquires every shard in ascending order).
pub struct ShardSession<'a> {
    cache: MutexGuard<'a, SudokuCache<SparseStore>>,
    owner: &'a ShardedCache,
    shard: usize,
}

impl ShardSession<'_> {
    /// Stamps `trace` (0 = untraced) into the shard recorder so that any
    /// [`RecoveryEvent`] emitted while serving this session's ops — Hash-1
    /// repairs under a demand read, consistency-triggered group recovery
    /// under a write — carries the request's trace ID. The stamp is
    /// cleared automatically when the session drops, so daemon scrubs on
    /// the same shard are never mis-attributed to a finished request.
    ///
    /// [`RecoveryEvent`]: sudoku_obs::RecoveryEvent
    pub fn set_trace(&mut self, trace: u64) {
        self.cache.recorder_mut().set_trace(trace);
    }

    /// Writes `data` to `line` (which must be owned by this shard),
    /// landing in the spare pool when the line has been remapped.
    pub fn write(&mut self, line: u64, data: &LineData) {
        let owner = self.owner;
        if owner.lock_extra(self.shard).spares.write(line, data) {
            return;
        }
        // A clean old value means the write's consistency pre-check could
        // not have triggered group recovery: only `line` itself changed.
        // Otherwise the whole Hash-1 group may have been rewritten under
        // it. The write itself reports which case ran — no separate
        // stored-line CRC probe needed.
        let clean_old = self.cache.write(line, data);
        owner.reassert_line(&mut self.cache, self.shard, line);
        if clean_old {
            owner.publish_line(&self.cache, line);
        } else {
            owner.publish_h1_group(&self.cache, line);
        }
    }

    /// Reads `line` through the shard-local (Hash-1) ladder, exactly like
    /// [`ShardedCache::read_local`].
    ///
    /// # Errors
    ///
    /// [`ServiceError::Uncorrectable`] when the local ladder fails (the
    /// caller escalates — after dropping this session).
    pub fn read(&mut self, line: u64) -> Result<LineData, ServiceError> {
        let owner = self.owner;
        if let Some(spared) = owner.lock_extra(self.shard).spares.lookup(line) {
            return match spared {
                Some(data) => Ok(data),
                None => Err(ServiceError::Uncorrectable(UncorrectableError { line })),
            };
        }
        // A clean stored line (the common case) is read without mutation,
        // so the view is already in sync and nothing needs republishing.
        let old = self.cache.stored_line(line);
        let clean_old = old.is_zero() || LineCodec::shared().crc_ok(&old);
        let result = self.cache.read(line).map_err(ServiceError::from);
        owner.reassert_line(&mut self.cache, self.shard, line);
        if !clean_old {
            owner.publish_h1_group(&self.cache, line);
        }
        result
    }
}

impl Drop for ShardSession<'_> {
    fn drop(&mut self) {
        // One relaxed store; keeps scrub events emitted after the session
        // from inheriting a stale demand trace.
        self.cache.recorder_mut().set_trace(0);
    }
}

impl std::fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.n_shards())
            .field("scheme", &self.config.scheme)
            .field("lines", &self.config.geometry.lines())
            .field("quarantined", &self.health.quarantined())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sudoku_core::Scheme;

    fn data_with(bits: &[usize]) -> LineData {
        let mut d = LineData::zero();
        for &b in bits {
            d.set_bit(b, true);
        }
        d
    }

    #[test]
    fn write_read_roundtrip_across_shards() {
        let cache = ShardedCache::new(SudokuConfig::small(Scheme::Z, 256, 16), 4).unwrap();
        for line in 0..256u64 {
            cache
                .write(line, &data_with(&[(line as usize * 7) % 512]))
                .unwrap();
        }
        for line in 0..256u64 {
            assert_eq!(
                cache.read(line).unwrap(),
                data_with(&[(line as usize * 7) % 512])
            );
        }
        assert_eq!(cache.stats().writes, 256);
        assert_eq!(cache.stats().reads, 256);
    }

    #[test]
    fn demand_read_escalates_across_shards() {
        // Fig. 3(c) pattern: two lines of one Hash-1 group with identical
        // fault positions — zero parity mismatch defeats shard-local SDR,
        // and with defer_hash2 the shard's own read ladder stops there.
        let cache = ShardedCache::new(SudokuConfig::small(Scheme::Z, 256, 16), 2).unwrap();
        let d4 = data_with(&[40, 41]);
        let d5 = data_with(&[50, 51]);
        cache.write(4, &d4).unwrap();
        cache.write(5, &d5).unwrap();
        for line in [4u64, 5] {
            cache.inject_fault(line, 100);
            cache.inject_fault(line, 200);
        }
        assert_eq!(cache.read(4).unwrap(), d4);
        assert_eq!(cache.read(5).unwrap(), d5);
        assert!(cache.coordinator_stats().raid4_repairs >= 1);
    }

    #[test]
    fn bad_shard_count_is_rejected() {
        let config = SudokuConfig::small(Scheme::Z, 256, 16);
        assert!(matches!(
            ShardedCache::new(config, 0),
            Err(ConfigError::BadShardCount { .. })
        ));
        assert!(matches!(
            ShardedCache::new(config, 17),
            Err(ConfigError::BadShardCount { .. })
        ));
    }

    #[test]
    fn full_scrub_equals_hinted_scrub() {
        let build = || {
            let c = ShardedCache::new(SudokuConfig::small(Scheme::Z, 256, 16), 4).unwrap();
            c.inject_fault(7, 1);
            c.inject_fault(7, 2);
            c.inject_fault(40, 3);
            c.inject_fault(40, 4);
            c
        };
        let full = build();
        let hinted = build();
        let r1 = full.scrub();
        let r2 = hinted.scrub_lines(&[7, 40]);
        assert_eq!(r1.unresolved, r2.unresolved);
        assert_eq!(r1.sdr_repairs, r2.sdr_repairs);
        for line in 0..256 {
            assert_eq!(full.stored_line(line), hinted.stored_line(line));
        }
    }

    #[test]
    fn merge_reports_sums_and_sorts() {
        let a = ScrubReport {
            lines_checked: 3,
            unresolved: vec![9, 2],
            ..ScrubReport::default()
        };
        let b = ScrubReport {
            lines_checked: 4,
            sdr_repairs: 1,
            unresolved: vec![5],
            ..ScrubReport::default()
        };
        let m = merge_reports([&a, &b]);
        assert_eq!(m.lines_checked, 7);
        assert_eq!(m.sdr_repairs, 1);
        assert_eq!(m.unresolved, vec![2, 5, 9]);
    }

    #[test]
    fn quarantined_shard_fails_fast_and_others_serve() {
        let cache = ShardedCache::new(SudokuConfig::small(Scheme::Z, 256, 16), 4).unwrap();
        for line in 0..256u64 {
            cache
                .write(line, &data_with(&[line as usize % 512]))
                .unwrap();
        }
        let victim_line = 0u64;
        let victim = cache.plan().shard_of_line(victim_line);
        assert!(cache.health().quarantine(victim));
        assert_eq!(
            cache.write(victim_line, &data_with(&[1])),
            Err(ServiceError::ShardDown(victim))
        );
        assert_eq!(
            cache.read(victim_line),
            Err(ServiceError::ShardDown(victim))
        );
        // Every line on a surviving shard still reads back.
        let mut served = 0;
        for line in 0..256u64 {
            if cache.plan().shard_of_line(line) != victim {
                assert_eq!(cache.read(line).unwrap(), data_with(&[line as usize % 512]));
                served += 1;
            }
        }
        assert_eq!(served, 192);
        let degraded = cache.degraded_stats();
        assert_eq!(degraded.quarantined_shards, vec![victim]);
        assert!(degraded.shard_down_rejects >= 2);
    }

    #[test]
    fn poisoned_mutex_quarantines_on_contact() {
        let cache = std::sync::Arc::new(
            ShardedCache::new(SudokuConfig::small(Scheme::Z, 256, 16), 4).unwrap(),
        );
        let victim = cache.plan().shard_of_line(0);
        let poisoner = std::sync::Arc::clone(&cache);
        let _ = std::thread::spawn(move || poisoner.chaos_panic(victim, true)).join();
        // First contact with the poisoned lock quarantines the shard.
        assert_eq!(cache.read(0), Err(ServiceError::ShardDown(victim)));
        assert!(!cache.health().is_up(victim));
        // Telemetry still works, scrubs still run on the survivors.
        let _ = cache.stats();
        let report = cache.scrub_lines(&[0, 17]);
        assert_eq!(report.unresolved, vec![0], "dead shard's line is a DUE");
    }

    #[test]
    fn escalation_with_dead_shard_reports_due_not_sdc() {
        let cache = ShardedCache::new(SudokuConfig::small(Scheme::Z, 256, 16), 2).unwrap();
        for line in 0..256u64 {
            cache
                .write(line, &data_with(&[line as usize % 512]))
                .unwrap();
        }
        // The Fig-3(c) H1-defeating pair needs cross-shard H2 — which dies
        // with the other shard's parity slice.
        for line in [4u64, 5] {
            cache.inject_fault(line, 100);
            cache.inject_fault(line, 200);
        }
        let owner = cache.plan().shard_of_line(4);
        let other = 1 - owner;
        cache.health().quarantine(other);
        let report = cache.escalate(&[4, 5]);
        assert_eq!(report.unresolved, vec![4, 5], "honest DUE, no H2 guess");
        assert!(cache.degraded_stats().skipped_h2_escalations >= 1);
        assert!(cache.read(4).is_err());
    }

    #[test]
    fn stuck_lines_keep_serving_through_repair() {
        let mut stuck = StuckBitMap::new();
        for line in 0..8u64 {
            stuck.insert(line * 16, (line as u16 * 31) % 553, true);
        }
        let cache = ShardedCache::with_faults(
            SudokuConfig::small(Scheme::Z, 256, 16),
            4,
            stuck,
            DegradedConfig::default(),
        )
        .unwrap();
        for line in 0..256u64 {
            cache
                .write(line, &data_with(&[line as usize % 512]))
                .unwrap();
        }
        for round in 0..3 {
            for line in 0..256u64 {
                assert_eq!(
                    cache.read(line).unwrap(),
                    data_with(&[line as usize % 512]),
                    "round {round}, line {line}"
                );
            }
        }
        let degraded = cache.degraded_stats();
        assert_eq!(degraded.stuck_lines, 8);
        assert!(degraded.stuck_reasserts > 0, "{degraded:?}");
    }

    #[test]
    fn repeated_due_line_is_spared_and_recovers_on_rewrite() {
        // Scheme X has no SDR and no Hash-2: two multibit lines in one H1
        // group are a permanent DUE. With stuck cells causing it, the line
        // must get spared after the strike threshold — and become readable
        // again once a fresh write lands in the spare slot.
        let mut stuck = StuckBitMap::new();
        for bit in [10u16, 20, 30, 40] {
            stuck.insert(0, bit, true);
            stuck.insert(1, bit, true);
        }
        let cache = ShardedCache::with_faults(
            SudokuConfig::small(Scheme::X, 64, 16),
            2,
            stuck,
            DegradedConfig {
                spare_cap_per_shard: 4,
                strike_threshold: 2,
            },
        )
        .unwrap();
        for line in 0..64u64 {
            cache
                .write(line, &data_with(&[line as usize % 512]))
                .unwrap();
        }
        // Each failed read escalates and records one strike.
        for _ in 0..2 {
            assert!(matches!(cache.read(0), Err(ServiceError::Uncorrectable(_))));
        }
        let degraded = cache.degraded_stats();
        assert!(degraded.spared_lines >= 1, "{degraded:?}");
        // Spared with data lost: still a detected error, never silent.
        assert!(matches!(cache.read(0), Err(ServiceError::Uncorrectable(_))));
        // A fresh write lands in the spare slot and the line lives again.
        cache.write(0, &data_with(&[7])).unwrap();
        assert_eq!(cache.read(0).unwrap(), data_with(&[7]));
        assert!(cache.degraded_stats().spare_reads >= 1);
    }

    #[test]
    fn stuck_sdr_line_spared_with_recovered_data() {
        // Z-scheme: the stuck pair is recoverable every time via H2, but
        // the stuck cells undo each reconstruction — non-convergent repair
        // churn. After the strike threshold the line is spared *with* its
        // recovered data, so reads stop needing escalation at all.
        let mut stuck = StuckBitMap::new();
        for bit in [100u16, 200] {
            stuck.insert(4, bit, true);
            stuck.insert(5, bit, true);
        }
        let cache = ShardedCache::with_faults(
            SudokuConfig::small(Scheme::Z, 256, 16),
            2,
            stuck,
            DegradedConfig {
                spare_cap_per_shard: 4,
                strike_threshold: 2,
            },
        )
        .unwrap();
        for line in 0..256u64 {
            cache
                .write(line, &data_with(&[line as usize % 512]))
                .unwrap();
        }
        for _ in 0..3 {
            assert_eq!(cache.read(4).unwrap(), data_with(&[4]));
            assert_eq!(cache.read(5).unwrap(), data_with(&[5]));
        }
        let degraded = cache.degraded_stats();
        assert!(degraded.undone_reconstructions >= 2, "{degraded:?}");
        assert!(degraded.spared_lines >= 1, "{degraded:?}");
        // Spared reads keep returning the right data from the pool.
        assert_eq!(cache.read(4).unwrap(), data_with(&[4]));
        assert!(cache.degraded_stats().spare_reads >= 1);
    }
}
