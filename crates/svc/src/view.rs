//! The lock-free **line view**: a seqlock-stamped mirror of every stored
//! line's `(data, crc, ecc)` triple, published by writers *inside* the
//! shard lock and read by clients without taking any lock at all.
//!
//! This is what makes the demand hot path "a CRC check plus a few atomic
//! loads": a clean read loads the line's slot under the seqlock, verifies
//! the CRC-31 inline, and never touches a mutex. Anything else — a torn
//! snapshot, an odd epoch (writer in flight), a CRC mismatch (the line is
//! faulty and needs the ladder), or an invalidated slot (the line was
//! remapped to a spare) — is a **miss**, and the caller falls back to the
//! locked worker/repair path, which is bit-identical to the reference.
//!
//! # Writer protocol (under the owning shard's mutex)
//!
//! Writers are already serialized per line by the shard mutex, so the
//! seqlock needs no writer CAS: bump the epoch to odd (`Relaxed` store,
//! then a `Release` fence orders it before the payload), store the eight
//! data words + packed `crc|ecc` meta word (`Relaxed`), then store the
//! even epoch with `Release`. A reader validates with the mirrored
//! acquire-fence protocol; equal even epochs on both sides of the payload
//! loads guarantee an untorn snapshot.
//!
//! # Accounting
//!
//! The reference cache counts `reads` on every read and `crc_checks` on
//! every non-zero read. The view replicates that exactly — per-shard
//! atomic counters folded into [`CacheStats`] by the sharded engine — so
//! aggregate stats stay bit-identical whether a read was served lock-free
//! or under the lock. An all-zero slot (data, crc *and* ecc all zero) is
//! the golden never-written line: served as zero with **no** CRC check,
//! exactly like the reference's `is_zero` fast path.
//!
//! [`CacheStats`]: sudoku_core::CacheStats

use std::sync::atomic::{fence, AtomicU64, Ordering};
use sudoku_codes::{LineCodec, LineData, ProtectedLine, LINE_WORDS};

/// Epoch sentinel: the line was remapped to a spare slot (or otherwise
/// taken out of the view) — permanently invalid, reads always miss.
const SPARED: u64 = u64::MAX;

/// Bounded seqlock retries before giving up and taking the locked path.
const MAX_RETRIES: u32 = 8;

/// Views are only built for geometries up to this many lines (the slot
/// array is ~80 B/line; 2^20 lines ≈ 84 MB). Larger geometries simply run
/// without the lock-free path.
pub(crate) const MAX_VIEW_LINES: u64 = 1 << 20;

/// One line's published state: seqlock epoch, the eight data words, a
/// packed meta word (`crc` in bits 0..32, `ecc` in bits 32..48), and the
/// count of accepted-but-not-yet-applied writes (see [`LineView::begin_write`]).
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; LINE_WORDS],
    meta: AtomicU64,
    /// Writes accepted into the shard queue but not yet applied and
    /// republished. While nonzero, lock-free reads miss: they fall to the
    /// shard queue, whose FIFO order puts them *behind* the write — that
    /// is what makes fire-and-forget writes read-your-write consistent.
    pending: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
            meta: AtomicU64::new(0),
            pending: AtomicU64::new(0),
        }
    }
}

/// Per-shard read accounting, cache-line padded so shards don't false-share.
#[repr(align(64))]
#[derive(Default)]
struct ShardCounters {
    reads: AtomicU64,
    crc_checks: AtomicU64,
}

/// Outcome of a lock-free view read.
pub(crate) enum ViewRead {
    /// Non-zero line whose CRC verified inline: serve it, no lock.
    Clean(LineData),
    /// Golden all-zero line (never written / zero slot): serve zero with
    /// no CRC check, mirroring the reference's `is_zero` fast path.
    Zero,
    /// Torn snapshot, writer in flight, CRC mismatch, or invalidated slot:
    /// fall back to the locked path (which does all the accounting).
    Miss,
}

/// The seqlock-stamped mirror of the whole line address space.
pub(crate) struct LineView {
    slots: Vec<Slot>,
    counters: Vec<ShardCounters>,
    codec: &'static LineCodec,
}

impl LineView {
    /// Builds a view for `n_lines` lines, or `None` when the geometry is
    /// too large to mirror (the service then runs with locked reads only).
    pub(crate) fn new(n_lines: u64, n_shards: usize) -> Option<LineView> {
        if n_lines > MAX_VIEW_LINES {
            return None;
        }
        Some(LineView {
            slots: (0..n_lines).map(|_| Slot::new()).collect(),
            counters: (0..n_shards).map(|_| ShardCounters::default()).collect(),
            codec: LineCodec::shared(),
        })
    }

    /// Lock-free read of `line`, charging accounting to `shard`. Returns
    /// the outcome plus the number of seqlock retries taken.
    pub(crate) fn try_read(&self, line: u64, shard: usize) -> (ViewRead, u32) {
        let slot = &self.slots[line as usize];
        if slot.pending.load(Ordering::Acquire) != 0 {
            // A write for this line is queued but not applied yet: the
            // locked path's FIFO queue orders this read after it.
            return (ViewRead::Miss, 0);
        }
        let mut retries = 0u32;
        loop {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == SPARED {
                return (ViewRead::Miss, retries);
            }
            if s1 & 1 == 1 {
                // Writer in flight.
                if retries >= MAX_RETRIES {
                    return (ViewRead::Miss, retries);
                }
                retries += 1;
                std::hint::spin_loop();
                continue;
            }
            let mut words = [0u64; LINE_WORDS];
            for (w, src) in words.iter_mut().zip(slot.words.iter()) {
                *w = src.load(Ordering::Relaxed);
            }
            let meta = slot.meta.load(Ordering::Relaxed);
            // Pairs with the writer's release fence: if any payload load
            // above observed a post-fence store, this fence makes the
            // writer's odd-epoch store visible to the re-load below.
            fence(Ordering::Acquire);
            let s2 = slot.seq.load(Ordering::Relaxed);
            if s1 != s2 {
                if retries >= MAX_RETRIES {
                    return (ViewRead::Miss, retries);
                }
                retries += 1;
                std::hint::spin_loop();
                continue;
            }
            // Untorn snapshot.
            let counters = &self.counters[shard];
            if meta == 0 && words.iter().all(|&w| w == 0) {
                counters.reads.fetch_add(1, Ordering::Relaxed);
                return (ViewRead::Zero, retries);
            }
            let candidate = ProtectedLine {
                data: LineData::from_words(words),
                crc: (meta & 0xFFFF_FFFF) as u32,
                ecc: (meta >> 32) as u16,
            };
            if self.codec.crc_ok(&candidate) {
                counters.reads.fetch_add(1, Ordering::Relaxed);
                counters.crc_checks.fetch_add(1, Ordering::Relaxed);
                return (ViewRead::Clean(candidate.data), retries);
            }
            // Faulty line: the locked ladder owns it (and its accounting).
            return (ViewRead::Miss, retries);
        }
    }

    /// Publishes `stored` as `line`'s current state. Must be called while
    /// holding the owning shard's mutex (writers are serialized by it —
    /// the seqlock has no writer-side CAS). A no-op on invalidated slots:
    /// a spared line never re-enters the view.
    pub(crate) fn publish(&self, line: u64, stored: &ProtectedLine) {
        let slot = &self.slots[line as usize];
        let s = slot.seq.load(Ordering::Relaxed);
        if s == SPARED {
            return;
        }
        slot.seq.store(s + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        for (dst, &w) in slot.words.iter().zip(stored.data.words().iter()) {
            dst.store(w, Ordering::Relaxed);
        }
        slot.meta.store(
            (stored.crc as u64) | ((stored.ecc as u64) << 32),
            Ordering::Relaxed,
        );
        slot.seq.store(s + 2, Ordering::Release);
    }

    /// Permanently takes `line` out of the view (it was remapped to a
    /// spare slot): reads miss forever, later publishes are no-ops.
    pub(crate) fn invalidate(&self, line: u64) {
        self.slots[line as usize]
            .seq
            .store(SPARED, Ordering::Release);
    }

    /// Marks a write for `line` as accepted (queued, not yet applied):
    /// lock-free reads of the line miss until [`LineView::retire_write`]
    /// balances this call. Called by the *client* thread at enqueue — the
    /// increment is in its program order, so its own subsequent reads are
    /// guaranteed to take the queued path behind the write.
    pub(crate) fn begin_write(&self, line: u64) {
        self.slots[line as usize]
            .pending
            .fetch_add(1, Ordering::Release);
    }

    /// Balances one [`LineView::begin_write`]: the write was applied and
    /// republished (or consumed by a teardown path — either way it will
    /// never be applied later, so the view is authoritative again once
    /// the count drains).
    pub(crate) fn retire_write(&self, line: u64) {
        self.slots[line as usize]
            .pending
            .fetch_sub(1, Ordering::Release);
    }

    /// Lock-free reads served for `shard` (each also counted one read in
    /// the reference accounting).
    pub(crate) fn reads(&self, shard: usize) -> u64 {
        self.counters[shard].reads.load(Ordering::Relaxed)
    }

    /// Inline CRC checks performed for `shard`'s lock-free reads.
    pub(crate) fn crc_checks(&self, shard: usize) -> u64 {
        self.counters[shard].crc_checks.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for LineView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LineView")
            .field("lines", &self.slots.len())
            .field("shards", &self.counters.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoded(bits: &[usize]) -> ProtectedLine {
        let mut d = LineData::zero();
        for &b in bits {
            d.set_bit(b, true);
        }
        LineCodec::shared().encode(&d)
    }

    #[test]
    fn zero_slot_serves_zero_without_crc_check() {
        let view = LineView::new(16, 2).unwrap();
        let (out, retries) = view.try_read(3, 1);
        assert!(matches!(out, ViewRead::Zero));
        assert_eq!(retries, 0);
        assert_eq!(view.reads(1), 1);
        assert_eq!(view.crc_checks(1), 0);
    }

    #[test]
    fn published_line_reads_back_clean_with_crc_check() {
        let view = LineView::new(16, 2).unwrap();
        let stored = encoded(&[5, 100]);
        view.publish(7, &stored);
        match view.try_read(7, 0) {
            (ViewRead::Clean(data), _) => assert_eq!(data, stored.data),
            _ => panic!("expected clean hit"),
        }
        assert_eq!(view.reads(0), 1);
        assert_eq!(view.crc_checks(0), 1);
    }

    #[test]
    fn corrupt_line_misses_without_accounting() {
        let view = LineView::new(16, 1).unwrap();
        let mut stored = encoded(&[9]);
        // Flip a data bit without updating the CRC: the inline check fails.
        stored.data.set_bit(10, true);
        view.publish(2, &stored);
        assert!(matches!(view.try_read(2, 0), (ViewRead::Miss, _)));
        assert_eq!(view.reads(0), 0);
        assert_eq!(view.crc_checks(0), 0);
    }

    #[test]
    fn invalidated_slot_misses_forever() {
        let view = LineView::new(16, 1).unwrap();
        view.publish(4, &encoded(&[1]));
        view.invalidate(4);
        assert!(matches!(view.try_read(4, 0), (ViewRead::Miss, _)));
        // Publishing after invalidation is a no-op: still a miss.
        view.publish(4, &encoded(&[2]));
        assert!(matches!(view.try_read(4, 0), (ViewRead::Miss, _)));
    }

    #[test]
    fn pending_write_blocks_lock_free_reads_until_retired() {
        let view = LineView::new(16, 1).unwrap();
        let stored = encoded(&[3, 200]);
        view.publish(6, &stored);
        view.begin_write(6);
        view.begin_write(6);
        assert!(matches!(view.try_read(6, 0), (ViewRead::Miss, _)));
        view.retire_write(6);
        // One write still in flight: still a miss.
        assert!(matches!(view.try_read(6, 0), (ViewRead::Miss, _)));
        view.retire_write(6);
        assert!(matches!(view.try_read(6, 0), (ViewRead::Clean(_), _)));
    }

    #[test]
    fn oversized_geometry_gets_no_view() {
        assert!(LineView::new(MAX_VIEW_LINES + 1, 4).is_none());
        assert!(LineView::new(MAX_VIEW_LINES, 4).is_some());
    }

    #[test]
    fn concurrent_publish_never_yields_torn_clean_read() {
        // A writer flips line 0 between two valid encodings while readers
        // hammer it: every Clean hit must be one of the two golden values
        // (the CRC would catch a mash of the two, so a torn-but-accepted
        // snapshot would surface as a wrong-data panic here).
        let view = std::sync::Arc::new(LineView::new(4, 1).unwrap());
        let a = encoded(&[1, 64, 300]);
        let b = encoded(&[2, 65, 301]);
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            {
                let view = std::sync::Arc::clone(&view);
                let stop = std::sync::Arc::clone(&stop);
                let (a, b) = (a, b);
                s.spawn(move || {
                    for i in 0..200_000u64 {
                        view.publish(0, if i & 1 == 0 { &a } else { &b });
                    }
                    stop.store(true, Ordering::Relaxed);
                });
            }
            for _ in 0..3 {
                let view = std::sync::Arc::clone(&view);
                let stop = std::sync::Arc::clone(&stop);
                let (a, b) = (a, b);
                s.spawn(move || {
                    let mut hits = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        if let (ViewRead::Clean(data), _) = view.try_read(0, 0) {
                            assert!(data == a.data || data == b.data, "torn read escaped");
                            hits += 1;
                        }
                    }
                    hits
                });
            }
        });
    }
}
