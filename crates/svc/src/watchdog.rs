//! The anomaly watchdog: turns audit-plane measurements into
//! [`Alert`]s.
//!
//! A dedicated thread scans the live signals every
//! [`AuditConfig::scan_every`] and raises **latched episodes** into the
//! plane's [`AlertLog`]: one alert on entering a bad state, silence while
//! it persists, re-arm when it clears. Seven alert classes:
//!
//! | class | trigger | severity |
//! |---|---|---|
//! | `deadline_miss` | a packet's achieved scrub interval exceeded the deadline, **or** a packet is overdue right now (staleness breach — fires even when the sweep never completes) | critical |
//! | `tick_lag_breach` | daemon tick started later than the lag budget | warning |
//! | `queue_saturation` | a shard queue at its bound for N consecutive scans | warning |
//! | `daemon_dead` | the scrub daemon died to a caught panic | critical |
//! | `daemon_stuck` | tick counter stalled for N scrub periods while the daemon is nominally alive | critical |
//! | `shard_quarantined` | a shard entered quarantine | critical |
//! | `budget_burn` | fast **and** slow error-budget burn rates above threshold | critical |
//!
//! The scan logic is a pure step function over a [`ScanObs`] record —
//! the live loop ([`watchdog_loop`]) builds one from the registry and
//! cache each period; tests feed synthetic ones and assert on the alert
//! stream deterministically.
//!
//! Latched conditions are also rendered into the plane's
//! degradation-reason list, which the exporter serves in the `/healthz`
//! *body*. The 200/503 status itself is untouched: probes keep flapping
//! only on quarantine and daemon death, never on soft conditions.

use crate::audit::{AuditPlane, ReliabilityEstimator};
use crate::sharded::ShardedCache;
use crate::telemetry::TelemetryRegistry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use sudoku_obs::{AlertClass, Severity};

/// One scan's worth of observations, as plain data. The live loop fills
/// this from the telemetry registry and the cache; tests construct it
/// directly.
#[derive(Clone, Debug)]
pub struct ScanObs {
    /// Scan time (monotonic).
    pub now: Instant,
    /// Whether a scrub daemon is configured at all. When `false`, every
    /// scrub-liveness check (deadline, stall, lag) is off — a service
    /// without a daemon is not "missing deadlines".
    pub daemon_expected: bool,
    /// Whether the daemon died to a caught panic.
    pub daemon_dead: bool,
    /// Latest daemon tick-start lag, ns.
    pub last_tick_lag_ns: u64,
    /// Cumulative scrub ticks completed.
    pub scrub_ticks: u64,
    /// Per-shard live queue depth.
    pub queue_depths: Vec<u64>,
    /// Quarantined shards, ascending.
    pub quarantined: Vec<usize>,
    /// Cumulative observed raw flips ([`ReliabilityEstimator::observed_flips`])
    /// when this scan sampled them; `None` on scans between samples.
    pub flips: Option<u64>,
}

/// Per-shard episode latches.
#[derive(Clone, Copy, Debug, Default)]
struct ShardLatch {
    stale: bool,
    sat_streak: u32,
    saturated: bool,
    quarantined: bool,
}

/// The watchdog's mutable scan state: latches, streaks, and the
/// reliability estimator's sample window.
pub struct Watchdog {
    plane: std::sync::Arc<AuditPlane>,
    estimator: Option<ReliabilityEstimator>,
    /// Queue bound (a depth at this value is saturated).
    queue_bound: u64,
    /// `daemon_stall_ticks` × scrub period; `None` disables stall checks.
    stall_budget: Option<Duration>,
    shards: Vec<ShardLatch>,
    /// Per-shard deadline misses seen as of the previous scan.
    last_misses: Vec<u64>,
    lag_high: bool,
    daemon_dead_raised: bool,
    stall_raised: bool,
    burning: bool,
    last_scrub_ticks: u64,
    ticks_advanced_at: Option<Instant>,
}

impl Watchdog {
    /// A watchdog over `plane` for `n_shards` shards with the given queue
    /// bound. `scrub_every` sizes the daemon-stall budget (`None` = no
    /// daemon, stall checks off). `estimator` enables the budget-burn
    /// class.
    pub fn new(
        plane: std::sync::Arc<AuditPlane>,
        n_shards: usize,
        queue_bound: u64,
        scrub_every: Option<Duration>,
        estimator: Option<ReliabilityEstimator>,
    ) -> Self {
        let stall_budget = scrub_every.map(|t| t * plane.config.daemon_stall_ticks.max(1));
        Watchdog {
            plane,
            estimator,
            queue_bound,
            stall_budget,
            shards: vec![ShardLatch::default(); n_shards],
            last_misses: vec![0; n_shards],
            lag_high: false,
            daemon_dead_raised: false,
            stall_raised: false,
            burning: false,
            last_scrub_ticks: 0,
            ticks_advanced_at: None,
        }
    }

    /// One scan step: raises alerts for newly-entered episodes, re-arms
    /// cleared ones, refreshes the live estimate gauges, and rewrites the
    /// `/healthz` degradation reasons.
    pub fn scan(&mut self, obs: &ScanObs) {
        let cfg_scans = self.plane.config.queue_saturation_scans.max(1);
        let plane = std::sync::Arc::clone(&self.plane);
        let deadline_ns = plane.tracker.deadline_ns();

        // --- scrub-deadline accounting (only with a daemon to hold it) --
        if obs.daemon_expected {
            for shard in 0..self.shards.len() {
                // Completed-sweep misses recorded by the tracker since the
                // previous scan.
                let misses = plane.tracker.misses(shard);
                if misses > self.last_misses[shard] {
                    let new = misses - self.last_misses[shard];
                    self.last_misses[shard] = misses;
                    plane.alerts.raise(
                        AlertClass::DeadlineMiss,
                        Severity::Critical,
                        Some(shard),
                        plane.tracker.last_miss_ns(shard) as f64,
                        deadline_ns as f64,
                        format!(
                            "shard {shard}: {new} packet(s) exceeded the \
                             scrub deadline (worst achieved interval \
                             {:.2} ms)",
                            plane.tracker.last_miss_ns(shard) as f64 / 1e6
                        ),
                    );
                }
                // Live staleness breach: a packet is overdue *now*. This
                // is the path that fires when the daemon stalls or dies —
                // the miss counter above only moves when a sweep finally
                // completes.
                let staleness = plane.tracker.worst_staleness_ns(shard);
                let latch = &mut self.shards[shard];
                if staleness > deadline_ns {
                    if !latch.stale {
                        latch.stale = true;
                        plane.alerts.raise(
                            AlertClass::DeadlineMiss,
                            Severity::Critical,
                            Some(shard),
                            staleness as f64,
                            deadline_ns as f64,
                            format!(
                                "shard {shard}: worst packet {:.2} ms \
                                 stale, past the {:.0} ms scrub deadline",
                                staleness as f64 / 1e6,
                                deadline_ns as f64 / 1e6
                            ),
                        );
                    }
                } else {
                    latch.stale = false;
                }
            }

            // --- daemon tick lag ---------------------------------------
            let budget_ns = self.plane.config.tick_lag_budget.as_nanos() as u64;
            if obs.last_tick_lag_ns > budget_ns {
                if !self.lag_high {
                    self.lag_high = true;
                    plane.alerts.raise(
                        AlertClass::TickLagBreach,
                        Severity::Warning,
                        None,
                        obs.last_tick_lag_ns as f64,
                        budget_ns as f64,
                        format!(
                            "daemon tick started {:.2} ms late (budget \
                             {:.2} ms)",
                            obs.last_tick_lag_ns as f64 / 1e6,
                            budget_ns as f64 / 1e6
                        ),
                    );
                }
            } else {
                self.lag_high = false;
            }

            // --- daemon death / stall ----------------------------------
            if obs.daemon_dead {
                if !self.daemon_dead_raised {
                    self.daemon_dead_raised = true;
                    plane.alerts.raise(
                        AlertClass::DaemonDead,
                        Severity::Critical,
                        None,
                        1.0,
                        0.0,
                        "scrub daemon died to a panic; scrubbing has \
                         stopped"
                            .to_string(),
                    );
                }
            } else if let Some(stall_budget) = self.stall_budget {
                if obs.scrub_ticks != self.last_scrub_ticks || self.ticks_advanced_at.is_none() {
                    self.last_scrub_ticks = obs.scrub_ticks;
                    self.ticks_advanced_at = Some(obs.now);
                    self.stall_raised = false;
                } else if let Some(at) = self.ticks_advanced_at {
                    let stalled = obs.now.duration_since(at);
                    if stalled > stall_budget && !self.stall_raised {
                        self.stall_raised = true;
                        plane.alerts.raise(
                            AlertClass::DaemonStuck,
                            Severity::Critical,
                            None,
                            stalled.as_secs_f64() * 1e3,
                            stall_budget.as_secs_f64() * 1e3,
                            format!(
                                "scrub daemon alive but tick counter \
                                 stalled at {} for {:.1} ms",
                                obs.scrub_ticks,
                                stalled.as_secs_f64() * 1e3
                            ),
                        );
                    }
                }
            }
        }

        // --- queue saturation ------------------------------------------
        for (shard, &depth) in obs.queue_depths.iter().enumerate() {
            if shard >= self.shards.len() {
                break;
            }
            let latch = &mut self.shards[shard];
            if self.queue_bound > 0 && depth >= self.queue_bound {
                latch.sat_streak = latch.sat_streak.saturating_add(1);
                if latch.sat_streak >= cfg_scans && !latch.saturated {
                    latch.saturated = true;
                    plane.alerts.raise(
                        AlertClass::QueueSaturation,
                        Severity::Warning,
                        Some(shard),
                        depth as f64,
                        self.queue_bound as f64,
                        format!(
                            "shard {shard} queue pinned at bound {} for \
                             {} consecutive scans",
                            self.queue_bound, latch.sat_streak
                        ),
                    );
                }
            } else {
                latch.sat_streak = 0;
                latch.saturated = false;
            }
        }

        // --- quarantine ------------------------------------------------
        for &shard in &obs.quarantined {
            if let Some(latch) = self.shards.get_mut(shard) {
                if !latch.quarantined {
                    latch.quarantined = true;
                    plane.alerts.raise(
                        AlertClass::ShardQuarantined,
                        Severity::Critical,
                        Some(shard),
                        1.0,
                        0.0,
                        format!("shard {shard} quarantined; serving N-1"),
                    );
                }
            }
        }

        // --- error-budget burn -----------------------------------------
        if let (Some(est), Some(flips)) = (self.estimator.as_mut(), obs.flips) {
            est.push_sample(obs.now, flips);
            let slow_window = plane.config.slow_window;
            if let Some(ber) = est.observed_ber(slow_window) {
                plane.observed_ber.set(ber);
            }
            if let Some(fit) = est.projected_fit(slow_window) {
                plane.projected_fit.set(fit);
            }
            let (fast, slow) = est.burn_rates();
            if let Some(fast) = fast {
                plane.burn_fast.set(fast);
            }
            if let Some(slow) = slow {
                plane.burn_slow.set(slow);
            }
            let threshold = plane.config.burn_threshold;
            match (fast, slow) {
                (Some(f), Some(s)) if f > threshold && s > threshold && !self.burning => {
                    self.burning = true;
                    plane.alerts.raise(
                        AlertClass::BudgetBurn,
                        Severity::Critical,
                        None,
                        s,
                        threshold,
                        format!(
                            "error-budget burn {s:.2}x over both \
                             windows (projected DUE \
                             {:.3e} FIT vs budget {:.3e})",
                            plane.projected_fit.get(),
                            plane.config.due_fit_budget
                        ),
                    );
                }
                (_, Some(s)) if s <= threshold => self.burning = false,
                _ => {}
            }
        }

        // --- /healthz degradation reasons ------------------------------
        let mut reasons = Vec::new();
        if self.daemon_dead_raised {
            reasons.push("daemon_dead".to_string());
        }
        if self.stall_raised {
            reasons.push("daemon_stuck".to_string());
        }
        if self.lag_high {
            reasons.push("tick_lag_breach".to_string());
        }
        if self.burning {
            reasons.push("budget_burn".to_string());
        }
        for (shard, latch) in self.shards.iter().enumerate() {
            if latch.quarantined {
                reasons.push(format!("shard_quarantined shard={shard}"));
            }
            if latch.stale {
                reasons.push(format!("scrub_deadline_stale shard={shard}"));
            }
            if latch.saturated {
                reasons.push(format!("queue_saturation shard={shard}"));
            }
        }
        plane.set_degraded_reasons(reasons);
    }
}

/// The live watchdog thread body: scans every
/// [`AuditConfig::scan_every`], sampling cumulative observed flips at a
/// coarser cadence (shard locks are touched only on flip samples, never
/// on plain scans).
///
/// [`AuditConfig::scan_every`]: crate::audit::AuditConfig::scan_every
pub fn watchdog_loop(
    state: &ShardedCache,
    plane: &std::sync::Arc<AuditPlane>,
    reg: &TelemetryRegistry,
    scrub_every: Option<Duration>,
    queue_bound: u64,
    stop: &AtomicBool,
) {
    let estimator = ReliabilityEstimator::new(state.config(), &plane.config);
    let mut dog = Watchdog::new(
        std::sync::Arc::clone(plane),
        state.n_shards(),
        queue_bound,
        scrub_every,
        Some(estimator),
    );
    let scan_every = plane.config.scan_every.max(Duration::from_millis(1));
    // Flip sampling aggregates CacheStats under shard locks — keep it to
    // a few Hz so the watchdog never becomes demand-path contention.
    let flip_every = (plane.config.fast_window / 4).max(Duration::from_millis(100));
    let mut last_flip_sample: Option<Instant> = None;
    while !stop.load(Ordering::Relaxed) {
        let now = Instant::now();
        let sample_flips = last_flip_sample.is_none_or(|at| now.duration_since(at) >= flip_every);
        let flips = if sample_flips {
            last_flip_sample = Some(now);
            Some(ReliabilityEstimator::observed_flips(&state.stats()))
        } else {
            None
        };
        let obs = ScanObs {
            now,
            daemon_expected: scrub_every.is_some(),
            daemon_dead: reg.daemon_dead.get() != 0,
            last_tick_lag_ns: reg.last_tick_lag_ns.get(),
            scrub_ticks: reg.scrub_ticks.get(),
            queue_depths: reg.queue_depths(),
            quarantined: state.health().quarantined(),
            flips,
        };
        dog.scan(&obs);
        std::thread::sleep(scan_every);
    }
    plane.alerts.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AuditConfig;
    use std::sync::Arc;
    use sudoku_core::{Scheme, ShardPlan, SudokuConfig};

    fn plane(config: AuditConfig) -> Arc<AuditPlane> {
        let cache = SudokuConfig::small(Scheme::Z, 1024, 16);
        let plan = ShardPlan::new(&cache, 4).unwrap();
        Arc::new(AuditPlane::new(&plan, config).unwrap())
    }

    fn quiet_obs(now: Instant) -> ScanObs {
        ScanObs {
            now,
            daemon_expected: true,
            daemon_dead: false,
            last_tick_lag_ns: 0,
            scrub_ticks: 0,
            queue_depths: vec![0; 4],
            quarantined: Vec::new(),
            flips: None,
        }
    }

    #[test]
    fn tick_lag_breach_is_latched() {
        let plane = plane(AuditConfig {
            // Huge deadline so synthetic staleness never interferes.
            scrub_deadline: Duration::from_secs(3600),
            tick_lag_budget: Duration::from_millis(2),
            ..AuditConfig::default()
        });
        let mut dog = Watchdog::new(Arc::clone(&plane), 4, 64, None, None);
        let t0 = Instant::now();
        let mut obs = quiet_obs(t0);
        obs.last_tick_lag_ns = 10_000_000; // 10 ms > 2 ms budget
        dog.scan(&obs);
        dog.scan(&obs); // still breached: latched, no second alert
        assert_eq!(plane.alerts.count(AlertClass::TickLagBreach), 1);
        assert!(plane
            .degraded_reasons()
            .contains(&"tick_lag_breach".to_string()));
        obs.last_tick_lag_ns = 0;
        dog.scan(&obs); // clears and re-arms
        assert!(plane.degraded_reasons().is_empty());
        obs.last_tick_lag_ns = 10_000_000;
        dog.scan(&obs);
        assert_eq!(plane.alerts.count(AlertClass::TickLagBreach), 2);
    }

    #[test]
    fn queue_saturation_needs_a_streak() {
        let plane = plane(AuditConfig {
            scrub_deadline: Duration::from_secs(3600),
            queue_saturation_scans: 3,
            ..AuditConfig::default()
        });
        let mut dog = Watchdog::new(Arc::clone(&plane), 4, 64, None, None);
        let t0 = Instant::now();
        let mut obs = quiet_obs(t0);
        obs.queue_depths[2] = 64;
        dog.scan(&obs);
        dog.scan(&obs);
        assert_eq!(plane.alerts.count(AlertClass::QueueSaturation), 0);
        dog.scan(&obs); // third consecutive saturated scan fires
        assert_eq!(plane.alerts.count(AlertClass::QueueSaturation), 1);
        let alert = &plane.alerts.recent(1)[0];
        assert_eq!(alert.shard, Some(2));
        // One idle scan resets the streak entirely.
        obs.queue_depths[2] = 0;
        dog.scan(&obs);
        obs.queue_depths[2] = 64;
        dog.scan(&obs);
        dog.scan(&obs);
        assert_eq!(plane.alerts.count(AlertClass::QueueSaturation), 1);
    }

    #[test]
    fn daemon_death_and_stall_alerts() {
        let plane = plane(AuditConfig {
            scrub_deadline: Duration::from_secs(3600),
            daemon_stall_ticks: 4,
            ..AuditConfig::default()
        });
        let scrub_every = Some(Duration::from_millis(2));
        let mut dog = Watchdog::new(Arc::clone(&plane), 4, 64, scrub_every, None);
        let t0 = Instant::now();
        let mut obs = quiet_obs(t0);
        obs.scrub_ticks = 5;
        dog.scan(&obs);
        // Ticks frozen past 4 × 2 ms: stuck.
        obs.now = t0 + Duration::from_millis(20);
        dog.scan(&obs);
        assert_eq!(plane.alerts.count(AlertClass::DaemonStuck), 1);
        assert!(plane
            .degraded_reasons()
            .contains(&"daemon_stuck".to_string()));
        // Ticks advance again: latch clears...
        obs.now = t0 + Duration::from_millis(25);
        obs.scrub_ticks = 6;
        dog.scan(&obs);
        assert!(plane.degraded_reasons().is_empty());
        // ...then the daemon dies: a different, terminal class.
        obs.daemon_dead = true;
        dog.scan(&obs);
        dog.scan(&obs);
        assert_eq!(plane.alerts.count(AlertClass::DaemonDead), 1);
        assert_eq!(plane.alerts.criticals(), 2);
    }

    #[test]
    fn staleness_breach_raises_deadline_miss() {
        let plane = plane(AuditConfig {
            // Epoch staleness crosses this immediately.
            scrub_deadline: Duration::from_nanos(1),
            ..AuditConfig::default()
        });
        let mut dog = Watchdog::new(Arc::clone(&plane), 4, 64, None, None);
        dog.scan(&quiet_obs(Instant::now()));
        // One staleness alert per shard, latched.
        assert_eq!(plane.alerts.count(AlertClass::DeadlineMiss), 4);
        dog.scan(&quiet_obs(Instant::now()));
        assert_eq!(plane.alerts.count(AlertClass::DeadlineMiss), 4);
        let reasons = plane.degraded_reasons();
        assert!(reasons
            .iter()
            .any(|r| r.starts_with("scrub_deadline_stale")));
    }

    #[test]
    fn completed_sweep_misses_raise_too() {
        let plane = plane(AuditConfig {
            scrub_deadline: Duration::from_nanos(1),
            ..AuditConfig::default()
        });
        // Record a real packet sweep whose interval (measured from epoch)
        // exceeds the 1 ns deadline.
        plane.tracker.note_packet(1, 0);
        let mut dog = Watchdog::new(Arc::clone(&plane), 4, 64, None, None);
        dog.scan(&quiet_obs(Instant::now()));
        let miss_alerts = plane.alerts.count(AlertClass::DeadlineMiss);
        // 4 staleness alerts + 1 counted-miss alert on shard 1.
        assert_eq!(miss_alerts, 5);
        assert_eq!(plane.tracker.total_misses(), 1);
    }

    #[test]
    fn quarantine_alert_once_per_shard() {
        let plane = plane(AuditConfig {
            scrub_deadline: Duration::from_secs(3600),
            ..AuditConfig::default()
        });
        let mut dog = Watchdog::new(Arc::clone(&plane), 4, 64, None, None);
        let mut obs = quiet_obs(Instant::now());
        obs.quarantined = vec![3];
        dog.scan(&obs);
        dog.scan(&obs);
        obs.quarantined = vec![1, 3];
        dog.scan(&obs);
        assert_eq!(plane.alerts.count(AlertClass::ShardQuarantined), 2);
        let reasons = plane.degraded_reasons();
        assert!(reasons.contains(&"shard_quarantined shard=1".to_string()));
        assert!(reasons.contains(&"shard_quarantined shard=3".to_string()));
    }

    #[test]
    fn budget_burn_fires_on_sustained_elevated_flips() {
        let cache = SudokuConfig::small(Scheme::Z, 1024, 16);
        let audit = AuditConfig {
            scrub_deadline: Duration::from_secs(3600),
            due_fit_budget: 1.0,
            burn_threshold: 1.0,
            fast_window: Duration::from_secs(1),
            slow_window: Duration::from_secs(4),
            ..AuditConfig::default()
        };
        let plan = ShardPlan::new(&cache, 4).unwrap();
        let plane = Arc::new(AuditPlane::new(&plan, audit.clone()).unwrap());
        let est = ReliabilityEstimator::new(&cache, &audit);
        let mut dog = Watchdog::new(Arc::clone(&plane), 4, 64, None, Some(est));
        let t0 = Instant::now();
        // A flip rate implying BER ~1e-3 per interval — catastrophic.
        let bits = 1024.0 * 553.0;
        let per_sec = 1e-3 * bits / 20e-3;
        for step in 0..6u64 {
            let mut obs = quiet_obs(t0 + Duration::from_secs(step));
            obs.daemon_expected = false;
            obs.flips = Some((per_sec * step as f64) as u64);
            dog.scan(&obs);
        }
        assert_eq!(plane.alerts.count(AlertClass::BudgetBurn), 1, "latched");
        assert!(plane.burn_slow.get() > 1.0);
        assert!(plane.observed_ber.get() > 1e-4);
        assert!(plane
            .degraded_reasons()
            .contains(&"budget_burn".to_string()));
    }
}
