//! Degraded-mode state: shard quarantine, per-shard line-sparing tables,
//! and the counters that make degradation observable.
//!
//! Field studies ("A Systematic Study of DDR4 DRAM Faults in the Field")
//! show memories accumulate mixed permanent+transient fault populations;
//! the paper's §VI claim is that the transient machinery also tolerates
//! permanent defects. This module is what lets the *service* exercise that
//! claim under fire: a shard whose worker panicked (or whose mutex was
//! poisoned mid-repair) is **quarantined** — requests to it fail fast with
//! [`ServiceError::ShardDown`] while the other shards keep serving — and a
//! line that keeps coming back detectably-uncorrectable or keeps needing
//! group reconstruction because of stuck cells is **spared**: remapped to a
//! small per-shard spare pool so the repair ladder stops churning on it.
//!
//! [`ServiceError::ShardDown`]: crate::ServiceError::ShardDown

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use sudoku_codes::LineData;
use sudoku_obs::json::JsonObject;

/// Liveness of every shard, shared between the engine, the workers, the
/// scrub daemon, and every client handle. Lock-free: one atomic per shard.
#[derive(Debug)]
pub struct ShardHealth {
    // 0 = up, 1 = quarantined.
    states: Vec<AtomicUsize>,
}

impl ShardHealth {
    /// All shards up.
    pub fn new(n_shards: usize) -> Self {
        ShardHealth {
            states: (0..n_shards).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Whether `shard` is still serving.
    pub fn is_up(&self, shard: usize) -> bool {
        self.states[shard].load(Ordering::Acquire) == 0
    }

    /// Marks `shard` quarantined. Returns `true` the first time (so the
    /// caller can log/count the transition exactly once).
    pub fn quarantine(&self, shard: usize) -> bool {
        self.states[shard].swap(1, Ordering::AcqRel) == 0
    }

    /// The quarantined shards, ascending.
    pub fn quarantined(&self) -> Vec<usize> {
        (0..self.states.len()).filter(|&s| !self.is_up(s)).collect()
    }

    /// Number of shards still up.
    pub fn n_up(&self) -> usize {
        (0..self.states.len()).filter(|&s| self.is_up(s)).count()
    }
}

/// Sparing policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct DegradedConfig {
    /// Maximum spared lines per shard (the spare-pool size; 0 disables
    /// sparing). Sized like a hardware spare-row budget: a handful of
    /// entries per bank is enough for the defect rates §VI targets.
    pub spare_cap_per_shard: usize,
    /// A line is spared after this many strikes — demand/scrub DUEs, or
    /// group reconstructions that a stuck cell immediately undid.
    pub strike_threshold: u32,
}

impl Default for DegradedConfig {
    fn default() -> Self {
        DegradedConfig {
            spare_cap_per_shard: 8,
            strike_threshold: 2,
        }
    }
}

/// One shard's line-sparing table: repeated-DUE (or repeatedly
/// reconstructed-then-re-corrupted) lines are remapped here, out of the
/// faulty array. A spared line's entry holds `Some(data)` when the sparing
/// event had a recovered value to carry over (stuck line rescued by
/// SDR/RAID-4), or `None` when the data was already lost (a DUE) — the
/// next write fills it, and until then reads stay detectably failed
/// rather than silently wrong.
#[derive(Debug, Default)]
pub struct SpareTable {
    entries: BTreeMap<u64, Option<LineData>>,
    strikes: BTreeMap<u64, u32>,
    config: DegradedConfig,
    /// Reads served from the spare pool.
    pub spare_reads: u64,
    /// Writes absorbed by the spare pool.
    pub spare_writes: u64,
    /// Strikes recorded (DUEs + undone reconstructions).
    pub strikes_recorded: u64,
    /// Sparing requests dropped because the pool was full.
    pub spare_overflow: u64,
}

impl SpareTable {
    /// An empty table with the given policy.
    pub fn new(config: DegradedConfig) -> Self {
        SpareTable {
            config,
            ..SpareTable::default()
        }
    }

    /// Number of spared lines.
    pub fn spared_lines(&self) -> usize {
        self.entries.len()
    }

    /// Whether `line` is remapped to the spare pool.
    pub fn is_spared(&self, line: u64) -> bool {
        self.entries.contains_key(&line)
    }

    /// The spared copy of `line`: `Some(Some(data))` if remapped and
    /// holding data, `Some(None)` if remapped but the data was lost to a
    /// DUE before sparing, `None` if the line is not spared at all.
    pub fn lookup(&mut self, line: u64) -> Option<Option<LineData>> {
        let hit = self.entries.get(&line).copied();
        if hit.is_some() {
            self.spare_reads += 1;
        }
        hit
    }

    /// Absorbs a write to a spared line. Returns `false` when the line is
    /// not spared (the caller writes to the array as usual).
    pub fn write(&mut self, line: u64, data: &LineData) -> bool {
        match self.entries.get_mut(&line) {
            Some(slot) => {
                *slot = Some(*data);
                self.spare_writes += 1;
                true
            }
            None => false,
        }
    }

    /// Records one strike against `line` — a DUE, or a reconstruction that
    /// stuck cells immediately undid. `recovered` carries the repaired data
    /// when the striking event produced one. Once the strike count reaches
    /// the threshold the line is spared (if the pool has room); returns
    /// `true` exactly when this call performed the remap.
    pub fn strike(&mut self, line: u64, recovered: Option<LineData>) -> bool {
        if self.config.spare_cap_per_shard == 0 || self.is_spared(line) {
            return false;
        }
        self.strikes_recorded += 1;
        let count = self.strikes.entry(line).or_insert(0);
        *count += 1;
        if *count < self.config.strike_threshold {
            return false;
        }
        if self.entries.len() >= self.config.spare_cap_per_shard {
            self.spare_overflow += 1;
            return false;
        }
        self.strikes.remove(&line);
        self.entries.insert(line, recovered);
        true
    }
}

/// Aggregated degraded-mode counters, reported next to [`CacheStats`] in
/// every service report.
///
/// [`CacheStats`]: sudoku_core::CacheStats
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DegradedStats {
    /// Quarantined shards, ascending.
    pub quarantined_shards: Vec<usize>,
    /// Lines remapped to spare pools, across all shards.
    pub spared_lines: u64,
    /// Reads served from spare pools.
    pub spare_reads: u64,
    /// Writes absorbed by spare pools.
    pub spare_writes: u64,
    /// Strikes recorded (DUEs + reconstructions undone by stuck cells).
    pub strikes: u64,
    /// Sparing requests dropped on full pools.
    pub spare_overflow: u64,
    /// Lines with permanent (stuck-at) cells in the physical fault map.
    pub stuck_lines: u64,
    /// Stored bits re-corrupted by stuck cells after writes/repairs.
    pub stuck_reasserts: u64,
    /// Group reconstructions of stuck lines that the stuck cells undid —
    /// the "SDR hit a stuck bit" non-convergence signal.
    pub undone_reconstructions: u64,
    /// Requests rejected fast because their shard was quarantined.
    pub shard_down_rejects: u64,
    /// Cross-shard (Hash-2) escalations skipped because a quarantined
    /// shard's parity slice was unavailable.
    pub skipped_h2_escalations: u64,
}

impl DegradedStats {
    /// JSON object with every degraded-mode counter, stable field order.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_array_u64(
            "quarantined_shards",
            self.quarantined_shards.iter().map(|&s| s as u64),
        )
        .field_u64("spared_lines", self.spared_lines)
        .field_u64("spare_reads", self.spare_reads)
        .field_u64("spare_writes", self.spare_writes)
        .field_u64("strikes", self.strikes)
        .field_u64("spare_overflow", self.spare_overflow)
        .field_u64("stuck_lines", self.stuck_lines)
        .field_u64("stuck_reasserts", self.stuck_reasserts)
        .field_u64("undone_reconstructions", self.undone_reconstructions)
        .field_u64("shard_down_rejects", self.shard_down_rejects)
        .field_u64("skipped_h2_escalations", self.skipped_h2_escalations);
        obj.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(bit: usize) -> LineData {
        let mut d = LineData::zero();
        d.set_bit(bit, true);
        d
    }

    #[test]
    fn health_transitions_once() {
        let health = ShardHealth::new(4);
        assert_eq!(health.n_up(), 4);
        assert!(health.is_up(2));
        assert!(health.quarantine(2), "first transition reports true");
        assert!(!health.quarantine(2), "second transition is idempotent");
        assert!(!health.is_up(2));
        assert_eq!(health.quarantined(), vec![2]);
        assert_eq!(health.n_up(), 3);
    }

    #[test]
    fn sparing_needs_threshold_strikes() {
        let mut table = SpareTable::new(DegradedConfig {
            spare_cap_per_shard: 4,
            strike_threshold: 2,
        });
        assert!(!table.strike(7, None), "one strike is not enough");
        assert!(table.strike(7, None), "second strike spares");
        assert!(table.is_spared(7));
        assert_eq!(table.lookup(7), Some(None), "data was lost to the DUE");
        assert!(table.write(7, &data(5)));
        assert_eq!(table.lookup(7), Some(Some(data(5))));
        assert_eq!(table.spare_reads, 2);
        assert_eq!(table.spare_writes, 1);
        // Strikes against an already-spared line are no-ops.
        assert!(!table.strike(7, None));
    }

    #[test]
    fn sparing_carries_recovered_data() {
        let mut table = SpareTable::new(DegradedConfig {
            spare_cap_per_shard: 4,
            strike_threshold: 1,
        });
        assert!(table.strike(3, Some(data(9))));
        assert_eq!(table.lookup(3), Some(Some(data(9))));
    }

    #[test]
    fn full_pool_overflows_instead_of_evicting() {
        let mut table = SpareTable::new(DegradedConfig {
            spare_cap_per_shard: 1,
            strike_threshold: 1,
        });
        assert!(table.strike(1, None));
        assert!(!table.strike(2, None), "pool is full");
        assert_eq!(table.spare_overflow, 1);
        assert!(table.is_spared(1));
        assert!(!table.is_spared(2));
    }

    #[test]
    fn zero_cap_disables_sparing() {
        let mut table = SpareTable::new(DegradedConfig {
            spare_cap_per_shard: 0,
            strike_threshold: 1,
        });
        for _ in 0..4 {
            assert!(!table.strike(1, None));
        }
        assert_eq!(table.spared_lines(), 0);
    }

    #[test]
    fn degraded_stats_json_has_every_counter() {
        let stats = DegradedStats {
            quarantined_shards: vec![1, 3],
            spared_lines: 2,
            stuck_reasserts: 17,
            ..DegradedStats::default()
        };
        let json = stats.to_json();
        assert!(json.contains("\"quarantined_shards\":[1,3]"), "{json}");
        assert!(json.contains("\"spared_lines\":2"), "{json}");
        assert!(json.contains("\"stuck_reasserts\":17"), "{json}");
        assert!(json.contains("\"skipped_h2_escalations\":0"), "{json}");
    }
}
