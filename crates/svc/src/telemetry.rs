//! The live telemetry plane: a lock-free metrics registry every worker
//! updates wait-free, a sampler thread that snapshots the whole system
//! into a bounded flight-recorder ring (and optional JSONL time series),
//! and the [`TelemetrySnapshot`] both the `/metrics` Prometheus exposition
//! and `/snapshot.json` render from.
//!
//! Until this plane existed, a soak or chaos run was a black box until
//! `shutdown()` assembled the final [`ServiceReport`]; now the recovery
//! ladder is observable *while it operates*: per-shard queue depth and
//! health, scrub-daemon progress and tick lag, ECC-1 / SDR / RAID-4 /
//! Hash-2 ladder counters, spare-pool occupancy, and per-phase request
//! latency (queue wait → shard service → cross-shard H2 gather+repair)
//! threaded by a per-request trace ID.
//!
//! Cost model: the hot path touches only [`Counter`]s, [`Gauge`]s and
//! striped [`AtomicHist`]s — relaxed atomics, no locks, no allocation.
//! Snapshots are pulled by the sampler (or a scrape), which *does* briefly
//! take the shard mutexes to read the recovery-ladder [`CacheStats`]; that
//! cost rides on the sampler interval, never on a request.
//!
//! [`ServiceReport`]: crate::ServiceReport

use crate::audit::{AuditPlane, AuditSnapshot};
use crate::degraded::DegradedStats;
use crate::sharded::ShardedCache;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use sudoku_core::CacheStats;
use sudoku_obs::json::JsonObject;
use sudoku_obs::{AtomicHist, Counter, Gauge, Histogram, ServiceHistograms};

/// Configuration of the optional live telemetry plane (sampler thread,
/// flight recorder, scrape endpoint). The registry itself is always on —
/// its hot-path cost is a handful of relaxed atomics per request.
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Sampler period: one [`TelemetrySnapshot`] lands in the flight
    /// recorder (and JSONL file) every interval.
    pub sample_every: Duration,
    /// Bounded flight-recorder capacity in snapshots; the ring keeps the
    /// most recent `cap` (≈ `cap × sample_every` seconds of history).
    pub flight_recorder_cap: usize,
    /// Optional JSONL time-series file: one snapshot per line, flushed per
    /// line so a crash leaves everything up to the last interval on disk.
    pub jsonl_path: Option<PathBuf>,
    /// Optional TCP scrape endpoint on `127.0.0.1:port` serving
    /// `/metrics`, `/healthz`, and `/snapshot.json` (0 = ephemeral port;
    /// read it back via [`Service::telemetry_addr`]).
    ///
    /// [`Service::telemetry_addr`]: crate::Service::telemetry_addr
    pub port: Option<u16>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            sample_every: Duration::from_millis(50),
            flight_recorder_cap: 256,
            jsonl_path: None,
            port: None,
        }
    }
}

/// Which demand path served a request — the causal "where did this
/// request's time go" dimension of a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TracePath {
    /// Served off the seqlock line view, no shard mutex.
    Lockfree,
    /// Served inline by the requester holding the shard claim.
    Inline,
    /// Rode the bounded shard queue to a drainer.
    Queued,
}

impl TracePath {
    /// Lowercase wire name.
    pub fn name(self) -> &'static str {
        match self {
            TracePath::Lockfree => "lockfree",
            TracePath::Inline => "inline",
            TracePath::Queued => "queued",
        }
    }
}

/// How a traced request ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Served normally.
    Ok,
    /// Served but detectably uncorrectable — always retained in the trace
    /// ring regardless of sampling, because every DUE deserves a trace.
    Due,
    /// Failed (shard down / shutting down).
    Error,
}

impl TraceOutcome {
    /// Lowercase wire name.
    pub fn name(self) -> &'static str {
        match self {
            TraceOutcome::Ok => "ok",
            TraceOutcome::Due => "due",
            TraceOutcome::Error => "error",
        }
    }
}

/// One completed request's per-phase timing, identified by its trace ID.
/// One histogram-bucket exemplar: `(bucket_index, upper_bound_ns,
/// trace_id)` — the most recent sampled trace to land in that latency
/// bucket.
pub type Exemplar = (usize, u64, u64);

/// The registry keeps a sampled ring of these (1 in [`TRACE_SAMPLE`],
/// plus **every** DUE) so `/snapshot.json` and `/traces.json` can show
/// concrete end-to-end traces without a per-request lock on the hot path.
#[derive(Clone, Copy, Debug)]
pub struct TraceRecord {
    /// The per-request trace ID the handle allocated at enqueue time.
    pub trace: u64,
    /// Owning shard.
    pub shard: u32,
    /// Whether the request was a write.
    pub write: bool,
    /// Which demand path served it.
    pub path: TracePath,
    /// How it ended.
    pub outcome: TraceOutcome,
    /// Time spent queued before a worker dequeued it, ns.
    pub queue_wait_ns: u64,
    /// Shard-local service time (dequeue → reply), ns.
    pub service_ns: u64,
    /// Cross-shard Hash-2 gather+repair time (0 when not escalated), ns.
    pub h2_ns: u64,
}

impl TraceRecord {
    /// End-to-end latency: queue wait plus service (H2 time is inside the
    /// service span — escalation happens while the worker owns the
    /// request).
    pub fn total_ns(&self) -> u64 {
        self.queue_wait_ns + self.service_ns
    }

    /// One JSON object per trace (`/snapshot.json`, `/traces.json`).
    pub fn to_json(self) -> String {
        let mut obj = JsonObject::new();
        obj.field_u64("trace", self.trace)
            .field_u64("shard", self.shard as u64)
            .field_bool("write", self.write)
            .field_str("path", self.path.name())
            .field_str("outcome", self.outcome.name())
            .field_u64("queue_wait_ns", self.queue_wait_ns)
            .field_u64("service_ns", self.service_ns)
            .field_u64("h2_ns", self.h2_ns)
            .field_u64("total_ns", self.total_ns());
        obj.finish()
    }
}

/// One trace in [`TRACE_SAMPLE`] completed requests is retained in the
/// recent-traces ring (the only mutex the plane owns, taken off the fast
/// path by the sampling).
pub const TRACE_SAMPLE: u64 = 64;

const TRACE_RING: usize = 64;

/// The lock-free metrics registry shared by every worker, the scrub
/// daemon, the client handles, the sampler, and the scrape endpoint.
///
/// Writers update counters/gauges/histograms wait-free; readers snapshot
/// via [`TelemetrySnapshot::capture`] without stopping the world.
#[derive(Debug)]
pub struct TelemetryRegistry {
    // Demand-path counters.
    /// Demand reads served.
    pub reads: Counter,
    /// Demand writes served.
    pub writes: Counter,
    /// Demand writes rejected (owning shard down).
    pub failed_writes: Counter,
    /// Demand reads that needed cross-shard Hash-2 escalation.
    pub escalated_reads: Counter,
    /// Demand reads that stayed uncorrectable (DUE).
    pub due_reads: Counter,
    /// Demand reads served lock-free off the seqlock line view (no shard
    /// mutex, CRC verified inline).
    pub clean_read_lockfree_hits: Counter,
    /// Seqlock retries taken by lock-free reads (torn snapshot or writer
    /// in flight); the retry *rate* is this over the hit count.
    pub seqlock_retries: Counter,
    // Scrub-daemon progress.
    /// Scrub ticks completed (one tick = one shard).
    pub scrub_ticks: Counter,
    /// Ticks skipped because the shard was quarantined.
    pub skipped_ticks: Counter,
    /// Lines faulted by the daemon's injectors.
    pub injected_lines: Counter,
    /// Cross-shard escalations triggered by scrub leftovers.
    pub escalations: Counter,
    /// Lines handed to those escalations.
    pub escalated_lines: Counter,
    /// Lines still unresolved after escalation (scrub-detected DUEs).
    pub unresolved_lines: Counter,
    /// Next shard the daemon will scrub (round-robin cursor).
    pub scrub_cursor: Gauge,
    /// 1 once the scrub daemon died to a caught panic.
    pub daemon_dead: Gauge,
    /// Most recent tick's start lag behind its deadline, ns.
    pub last_tick_lag_ns: Gauge,
    // Latency histograms (same pow2 layouts as [`ServiceHistograms`]).
    /// End-to-end demand-read latency, ns.
    pub read_latency_ns: AtomicHist,
    /// End-to-end demand-write latency, ns.
    pub write_latency_ns: AtomicHist,
    /// Phase: time queued before a worker dequeued the request, ns.
    pub queue_wait_ns: AtomicHist,
    /// Phase: shard-local service time (dequeue → reply), ns.
    pub shard_service_ns: AtomicHist,
    /// Phase: cross-shard Hash-2 gather+repair time, ns (demand + scrub).
    pub h2_gather_ns: AtomicHist,
    /// Wall-clock duration of one shard scrub tick, ns.
    pub scrub_tick_ns: AtomicHist,
    /// Scrub-tick start lag behind the deadline, ns.
    pub tick_lag_ns: AtomicHist,
    /// Per-shard request-queue depth sampled at dequeue.
    pub queue_depth_hist: AtomicHist,
    depths: Vec<Gauge>,
    next_trace: AtomicU64,
    traces: Mutex<VecDeque<TraceRecord>>,
    /// Histogram exemplars: per bucket of `read_latency_ns` (and
    /// `write_latency_ns`), the most recent trace ID that landed there,
    /// stored as `trace + 1` (0 = no exemplar yet). This is what links a
    /// p999 bucket on a dashboard to a concrete causal trace in
    /// `/traces.json`.
    read_exemplars: Vec<AtomicU64>,
    write_exemplars: Vec<AtomicU64>,
}

impl TelemetryRegistry {
    /// A zeroed registry for an `n_shards`-way service.
    pub fn new(n_shards: usize) -> Self {
        TelemetryRegistry {
            reads: Counter::new(),
            writes: Counter::new(),
            failed_writes: Counter::new(),
            escalated_reads: Counter::new(),
            due_reads: Counter::new(),
            clean_read_lockfree_hits: Counter::new(),
            seqlock_retries: Counter::new(),
            scrub_ticks: Counter::new(),
            skipped_ticks: Counter::new(),
            injected_lines: Counter::new(),
            escalations: Counter::new(),
            escalated_lines: Counter::new(),
            unresolved_lines: Counter::new(),
            scrub_cursor: Gauge::new(),
            daemon_dead: Gauge::new(),
            last_tick_lag_ns: Gauge::new(),
            read_latency_ns: AtomicHist::pow2(40),
            write_latency_ns: AtomicHist::pow2(40),
            queue_wait_ns: AtomicHist::pow2(40),
            shard_service_ns: AtomicHist::pow2(40),
            h2_gather_ns: AtomicHist::pow2(40),
            scrub_tick_ns: AtomicHist::pow2(40),
            tick_lag_ns: AtomicHist::pow2(40),
            queue_depth_hist: AtomicHist::pow2(20),
            depths: (0..n_shards).map(|_| Gauge::new()).collect(),
            next_trace: AtomicU64::new(0),
            traces: Mutex::new(VecDeque::with_capacity(TRACE_RING)),
            read_exemplars: (0..AtomicHist::pow2(40).n_buckets())
                .map(|_| AtomicU64::new(0))
                .collect(),
            write_exemplars: (0..AtomicHist::pow2(40).n_buckets())
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    /// Allocates the next per-request trace ID.
    #[inline]
    pub fn next_trace_id(&self) -> u64 {
        self.next_trace.fetch_add(1, Ordering::Relaxed)
    }

    /// Trace IDs issued so far.
    pub fn traces_issued(&self) -> u64 {
        self.next_trace.load(Ordering::Relaxed)
    }

    /// `shard`'s live queue-depth gauge.
    #[inline]
    pub fn depth(&self, shard: usize) -> &Gauge {
        &self.depths[shard]
    }

    /// Current depth of every shard's request queue.
    pub fn queue_depths(&self) -> Vec<u64> {
        self.depths.iter().map(Gauge::get).collect()
    }

    /// Completes one request's phase accounting: records the phase and
    /// end-to-end histograms, and retains a 1-in-[`TRACE_SAMPLE`] sample
    /// of concrete [`TraceRecord`]s for `/snapshot.json`.
    pub fn note_request(&self, record: TraceRecord) {
        self.queue_wait_ns.record(record.queue_wait_ns);
        self.shard_service_ns.record(record.service_ns);
        if record.h2_ns > 0 {
            self.h2_gather_ns.record(record.h2_ns);
        }
        let total = record.total_ns();
        if record.write {
            self.write_latency_ns.record(total);
            let bucket = self.write_latency_ns.bucket_of(total);
            self.write_exemplars[bucket].store(record.trace + 1, Ordering::Relaxed);
        } else {
            self.read_latency_ns.record(total);
            let bucket = self.read_latency_ns.bucket_of(total);
            self.read_exemplars[bucket].store(record.trace + 1, Ordering::Relaxed);
        }
        // DUEs are always retained — a detected-uncorrectable read is the
        // event the whole audit plane exists for, and there are few.
        if record.trace.is_multiple_of(TRACE_SAMPLE) || record.outcome == TraceOutcome::Due {
            // `try_lock`, never `lock`: the ring is a diagnostic sample, and
            // a sampled trace must not make a lock-free read wait behind a
            // scraper (or another sampler) holding the ring. Contended
            // pushes are simply dropped.
            if let Ok(mut ring) = self.traces.try_lock() {
                if ring.len() == TRACE_RING {
                    ring.pop_front();
                }
                ring.push_back(record);
            }
        }
    }

    /// The latency-histogram exemplars: `(bucket_index, upper_bound_ns,
    /// trace_id)` for every bucket that has one, reads and writes
    /// separately.
    pub fn exemplars(&self) -> (Vec<Exemplar>, Vec<Exemplar>) {
        let collect = |slots: &[AtomicU64], hist: &AtomicHist| {
            slots
                .iter()
                .enumerate()
                .filter_map(|(bucket, slot)| {
                    let stamped = slot.load(Ordering::Relaxed);
                    (stamped > 0).then(|| (bucket, hist.bucket_bound(bucket), stamped - 1))
                })
                .collect::<Vec<_>>()
        };
        (
            collect(&self.read_exemplars, &self.read_latency_ns),
            collect(&self.write_exemplars, &self.write_latency_ns),
        )
    }

    /// The sampled recent traces, oldest first.
    pub fn recent_traces(&self) -> Vec<TraceRecord> {
        self.traces
            .lock()
            .map(|r| r.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Folds the registry's histograms into the [`ServiceHistograms`]
    /// shape the end-of-run [`ServiceReport`] carries.
    ///
    /// [`ServiceReport`]: crate::ServiceReport
    pub fn service_hists(&self) -> ServiceHistograms {
        ServiceHistograms {
            read_latency_ns: self.read_latency_ns.snapshot(),
            write_latency_ns: self.write_latency_ns.snapshot(),
            scrub_tick_ns: self.scrub_tick_ns.snapshot(),
            escalation_ns: self.h2_gather_ns.snapshot(),
            queue_depth: self.queue_depth_hist.snapshot(),
        }
    }
}

/// One coherent picture of the whole service at a sampling instant: the
/// registry's lock-free metrics, plus the recovery-ladder and degraded
/// counters pulled (briefly, under the shard mutexes) from the engine.
#[derive(Clone, Debug)]
pub struct TelemetrySnapshot {
    /// Monotone snapshot sequence number (per sampler/scraper).
    pub seq: u64,
    /// Milliseconds since the UNIX epoch at capture time.
    pub unix_ms: u64,
    /// Quarantined shards, ascending.
    pub quarantined: Vec<usize>,
    /// Shards still serving.
    pub shards_up: usize,
    /// Total shard count.
    pub shards: usize,
    /// Whether the scrub daemon died to a caught panic.
    pub daemon_dead: bool,
    /// Per-shard live queue depth.
    pub queue_depths: Vec<u64>,
    /// Per-shard spare-pool occupancy (lines remapped).
    pub spare_occupancy: Vec<u64>,
    /// Demand reads served.
    pub reads: u64,
    /// Demand writes served.
    pub writes: u64,
    /// Demand writes rejected.
    pub failed_writes: u64,
    /// Demand reads that escalated cross-shard.
    pub escalated_reads: u64,
    /// Demand reads left uncorrectable.
    pub due_reads: u64,
    /// Demand reads served lock-free off the seqlock line view.
    pub clean_read_lockfree_hits: u64,
    /// Seqlock retries taken by lock-free reads.
    pub seqlock_retries: u64,
    /// Scrub ticks completed.
    pub scrub_ticks: u64,
    /// Scrub ticks skipped (quarantined shard).
    pub skipped_ticks: u64,
    /// Lines faulted by the injectors.
    pub injected_lines: u64,
    /// Cross-shard escalations from scrub leftovers.
    pub escalations: u64,
    /// Lines handed to escalations.
    pub escalated_lines: u64,
    /// Scrub-detected DUE lines.
    pub unresolved_lines: u64,
    /// Next shard the daemon will scrub.
    pub scrub_cursor: u64,
    /// Most recent tick's start lag, ns.
    pub last_tick_lag_ns: u64,
    /// Trace IDs issued (= requests accepted).
    pub traces_issued: u64,
    /// Recovery-ladder counters (ECC-1 fixes, SDR trials, RAID-4/H2
    /// reconstructions, DUEs, group scans) summed over shards+coordinator.
    pub stats: CacheStats,
    /// Degraded-mode counters (sparing, stuck physics, skipped H2, …).
    pub degraded: DegradedStats,
    /// End-to-end demand-read latency.
    pub read_latency_ns: Histogram,
    /// End-to-end demand-write latency.
    pub write_latency_ns: Histogram,
    /// Queue-wait phase.
    pub queue_wait_ns: Histogram,
    /// Shard-service phase.
    pub shard_service_ns: Histogram,
    /// Cross-shard H2 gather+repair phase.
    pub h2_gather_ns: Histogram,
    /// Scrub-tick duration.
    pub scrub_tick_ns: Histogram,
    /// Scrub-tick lag behind deadline.
    pub tick_lag_ns: Histogram,
    /// Sampled per-request traces, oldest first.
    pub recent_traces: Vec<TraceRecord>,
    /// The audit plane's view (scrub deadlines, burn rates, alerts) when
    /// the capture was given one.
    pub audit: Option<AuditSnapshot>,
}

fn unix_ms_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

impl TelemetrySnapshot {
    /// Captures the system state: lock-free reads of the registry, plus a
    /// brief pass under the shard mutexes for [`CacheStats`] and
    /// [`DegradedStats`] (poison-tolerant — quarantined shards are still
    /// read).
    pub fn capture(seq: u64, state: &ShardedCache, reg: &TelemetryRegistry) -> TelemetrySnapshot {
        Self::capture_with_audit(seq, state, reg, None)
    }

    /// [`TelemetrySnapshot::capture`], additionally folding in the audit
    /// plane's deadline/burn/alert view when one is running.
    pub fn capture_with_audit(
        seq: u64,
        state: &ShardedCache,
        reg: &TelemetryRegistry,
        audit: Option<&AuditPlane>,
    ) -> TelemetrySnapshot {
        TelemetrySnapshot {
            seq,
            unix_ms: unix_ms_now(),
            quarantined: state.health().quarantined(),
            shards_up: state.health().n_up(),
            shards: state.n_shards(),
            daemon_dead: reg.daemon_dead.get() != 0,
            queue_depths: reg.queue_depths(),
            spare_occupancy: state.spare_occupancy(),
            reads: reg.reads.get(),
            writes: reg.writes.get(),
            failed_writes: reg.failed_writes.get(),
            escalated_reads: reg.escalated_reads.get(),
            due_reads: reg.due_reads.get(),
            clean_read_lockfree_hits: reg.clean_read_lockfree_hits.get(),
            seqlock_retries: reg.seqlock_retries.get(),
            scrub_ticks: reg.scrub_ticks.get(),
            skipped_ticks: reg.skipped_ticks.get(),
            injected_lines: reg.injected_lines.get(),
            escalations: reg.escalations.get(),
            escalated_lines: reg.escalated_lines.get(),
            unresolved_lines: reg.unresolved_lines.get(),
            scrub_cursor: reg.scrub_cursor.get(),
            last_tick_lag_ns: reg.last_tick_lag_ns.get(),
            traces_issued: reg.traces_issued(),
            stats: state.stats(),
            degraded: state.degraded_stats(),
            read_latency_ns: reg.read_latency_ns.snapshot(),
            write_latency_ns: reg.write_latency_ns.snapshot(),
            queue_wait_ns: reg.queue_wait_ns.snapshot(),
            shard_service_ns: reg.shard_service_ns.snapshot(),
            h2_gather_ns: reg.h2_gather_ns.snapshot(),
            scrub_tick_ns: reg.scrub_tick_ns.snapshot(),
            tick_lag_ns: reg.tick_lag_ns.snapshot(),
            recent_traces: reg.recent_traces(),
            audit: audit.map(AuditPlane::snapshot),
        }
    }

    /// Whether every shard is up and the daemon (if it ever ran) is alive.
    pub fn healthy(&self) -> bool {
        self.quarantined.is_empty() && !self.daemon_dead
    }

    /// One JSON object per snapshot — the flight-recorder JSONL line and
    /// the `/snapshot.json` body.
    pub fn to_json(&self) -> String {
        let traces: Vec<String> = self.recent_traces.iter().map(|t| t.to_json()).collect();
        let mut obj = JsonObject::new();
        obj.field_u64("seq", self.seq)
            .field_u64("unix_ms", self.unix_ms)
            .field_bool("healthy", self.healthy())
            .field_array_u64("quarantined", self.quarantined.iter().map(|&s| s as u64))
            .field_u64("shards_up", self.shards_up as u64)
            .field_u64("shards", self.shards as u64)
            .field_bool("daemon_dead", self.daemon_dead)
            .field_array_u64("queue_depths", self.queue_depths.iter().copied())
            .field_array_u64("spare_occupancy", self.spare_occupancy.iter().copied())
            .field_u64("reads", self.reads)
            .field_u64("writes", self.writes)
            .field_u64("failed_writes", self.failed_writes)
            .field_u64("escalated_reads", self.escalated_reads)
            .field_u64("due_reads", self.due_reads)
            .field_u64("clean_read_lockfree_hits", self.clean_read_lockfree_hits)
            .field_u64("seqlock_retries", self.seqlock_retries)
            .field_u64("scrub_ticks", self.scrub_ticks)
            .field_u64("skipped_ticks", self.skipped_ticks)
            .field_u64("injected_lines", self.injected_lines)
            .field_u64("escalations", self.escalations)
            .field_u64("escalated_lines", self.escalated_lines)
            .field_u64("unresolved_lines", self.unresolved_lines)
            .field_u64("scrub_cursor", self.scrub_cursor)
            .field_u64("last_tick_lag_ns", self.last_tick_lag_ns)
            .field_u64("traces_issued", self.traces_issued)
            .field_raw("stats", &self.stats.to_json())
            .field_raw("degraded", &self.degraded.to_json())
            .field_raw("read_latency_ns", &self.read_latency_ns.to_json())
            .field_raw("write_latency_ns", &self.write_latency_ns.to_json())
            .field_raw("queue_wait_ns", &self.queue_wait_ns.to_json())
            .field_raw("shard_service_ns", &self.shard_service_ns.to_json())
            .field_raw("h2_gather_ns", &self.h2_gather_ns.to_json())
            .field_raw("scrub_tick_ns", &self.scrub_tick_ns.to_json())
            .field_raw("tick_lag_ns", &self.tick_lag_ns.to_json())
            .field_raw("recent_traces", &format!("[{}]", traces.join(",")));
        if let Some(audit) = &self.audit {
            obj.field_raw("audit", &audit.to_json());
        }
        obj.finish()
    }

    /// Prometheus text exposition (version 0.0.4) of the snapshot.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        };
        let gauge = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
            ));
        };
        counter(
            &mut out,
            "sudoku_reads_total",
            "Demand reads served",
            self.reads,
        );
        counter(
            &mut out,
            "sudoku_writes_total",
            "Demand writes served",
            self.writes,
        );
        counter(
            &mut out,
            "sudoku_failed_writes_total",
            "Demand writes rejected (shard down)",
            self.failed_writes,
        );
        counter(
            &mut out,
            "sudoku_escalated_reads_total",
            "Demand reads escalated cross-shard",
            self.escalated_reads,
        );
        counter(
            &mut out,
            "sudoku_due_reads_total",
            "Demand reads left uncorrectable",
            self.due_reads,
        );
        counter(
            &mut out,
            "sudoku_clean_read_lockfree_hits_total",
            "Demand reads served lock-free off the seqlock line view",
            self.clean_read_lockfree_hits,
        );
        counter(
            &mut out,
            "sudoku_seqlock_retries_total",
            "Seqlock retries taken by lock-free reads",
            self.seqlock_retries,
        );
        counter(
            &mut out,
            "sudoku_scrub_ticks_total",
            "Scrub ticks completed",
            self.scrub_ticks,
        );
        counter(
            &mut out,
            "sudoku_scrub_skipped_ticks_total",
            "Scrub ticks skipped (quarantined shard)",
            self.skipped_ticks,
        );
        counter(
            &mut out,
            "sudoku_injected_lines_total",
            "Lines faulted by the injectors",
            self.injected_lines,
        );
        counter(
            &mut out,
            "sudoku_scrub_escalations_total",
            "Cross-shard escalations from scrub leftovers",
            self.escalations,
        );
        counter(
            &mut out,
            "sudoku_scrub_unresolved_lines_total",
            "Scrub-detected DUE lines",
            self.unresolved_lines,
        );
        counter(
            &mut out,
            "sudoku_traces_total",
            "Per-request trace IDs issued",
            self.traces_issued,
        );
        // Recovery ladder (CacheStats).
        counter(
            &mut out,
            "sudoku_ecc1_repairs_total",
            "ECC-1 single-bit fixes",
            self.stats.ecc1_repairs,
        );
        counter(
            &mut out,
            "sudoku_meta_repairs_total",
            "ECC-metadata regenerations",
            self.stats.meta_repairs,
        );
        counter(
            &mut out,
            "sudoku_multibit_detections_total",
            "Lines flagged multibit by CRC",
            self.stats.multibit_detections,
        );
        counter(
            &mut out,
            "sudoku_raid4_repairs_total",
            "RAID-4 reconstructions",
            self.stats.raid4_repairs,
        );
        counter(
            &mut out,
            "sudoku_sdr_repairs_total",
            "SDR resurrections",
            self.stats.sdr_repairs,
        );
        counter(
            &mut out,
            "sudoku_sdr_trials_total",
            "SDR flip-and-check trials",
            self.stats.sdr_trials,
        );
        counter(
            &mut out,
            "sudoku_hash2_repairs_total",
            "Repairs only the Hash-2 dimension delivered",
            self.stats.hash2_repairs,
        );
        counter(
            &mut out,
            "sudoku_due_lines_total",
            "Lines left uncorrectable",
            self.stats.due_lines,
        );
        counter(
            &mut out,
            "sudoku_group_scans_total",
            "Whole-group recovery reads",
            self.stats.group_scans,
        );
        // Degraded mode.
        counter(
            &mut out,
            "sudoku_skipped_h2_escalations_total",
            "H2 escalations refused (shard down)",
            self.degraded.skipped_h2_escalations,
        );
        counter(
            &mut out,
            "sudoku_shard_down_rejects_total",
            "Requests rejected fast on quarantined shards",
            self.degraded.shard_down_rejects,
        );
        counter(
            &mut out,
            "sudoku_stuck_reasserts_total",
            "Bits re-corrupted by stuck cells",
            self.degraded.stuck_reasserts,
        );
        counter(
            &mut out,
            "sudoku_spare_strikes_total",
            "Sparing strikes recorded",
            self.degraded.strikes,
        );
        gauge(
            &mut out,
            "sudoku_shards",
            "Configured shard count",
            self.shards as u64,
        );
        gauge(
            &mut out,
            "sudoku_shards_up",
            "Shards currently serving",
            self.shards_up as u64,
        );
        gauge(
            &mut out,
            "sudoku_daemon_up",
            "1 while the scrub daemon is alive",
            u64::from(!self.daemon_dead),
        );
        gauge(
            &mut out,
            "sudoku_scrub_cursor",
            "Next shard the daemon scrubs",
            self.scrub_cursor,
        );
        gauge(
            &mut out,
            "sudoku_scrub_tick_lag_ns",
            "Most recent tick's start lag behind deadline",
            self.last_tick_lag_ns,
        );
        gauge(
            &mut out,
            "sudoku_spared_lines",
            "Lines remapped to spare pools",
            self.degraded.spared_lines,
        );
        gauge(
            &mut out,
            "sudoku_read_latency_ns_p99",
            "Demand-read latency p99 (histogram upper bound)",
            self.read_latency_ns.quantile(0.99),
        );
        gauge(
            &mut out,
            "sudoku_read_latency_ns_p999",
            "Demand-read latency p999 (histogram upper bound)",
            self.read_latency_ns.quantile(0.999),
        );
        // Per-shard labelled gauges.
        out.push_str("# HELP sudoku_shard_up Liveness per shard\n# TYPE sudoku_shard_up gauge\n");
        for shard in 0..self.shards {
            let up = u64::from(!self.quarantined.contains(&shard));
            out.push_str(&format!("sudoku_shard_up{{shard=\"{shard}\"}} {up}\n"));
        }
        out.push_str(
            "# HELP sudoku_queue_depth Live request-queue depth per shard\n# TYPE sudoku_queue_depth gauge\n",
        );
        for (shard, depth) in self.queue_depths.iter().enumerate() {
            out.push_str(&format!(
                "sudoku_queue_depth{{shard=\"{shard}\"}} {depth}\n"
            ));
        }
        out.push_str(
            "# HELP sudoku_spare_occupancy Spare-pool occupancy per shard\n# TYPE sudoku_spare_occupancy gauge\n",
        );
        for (shard, n) in self.spare_occupancy.iter().enumerate() {
            out.push_str(&format!(
                "sudoku_spare_occupancy{{shard=\"{shard}\"}} {n}\n"
            ));
        }
        // Histograms.
        prometheus_hist(
            &mut out,
            "sudoku_read_latency_ns",
            "Demand-read latency",
            &self.read_latency_ns,
        );
        prometheus_hist(
            &mut out,
            "sudoku_write_latency_ns",
            "Demand-write latency",
            &self.write_latency_ns,
        );
        prometheus_hist(
            &mut out,
            "sudoku_queue_wait_ns",
            "Queue-wait phase",
            &self.queue_wait_ns,
        );
        prometheus_hist(
            &mut out,
            "sudoku_shard_service_ns",
            "Shard-service phase",
            &self.shard_service_ns,
        );
        prometheus_hist(
            &mut out,
            "sudoku_h2_gather_ns",
            "Cross-shard H2 gather+repair phase",
            &self.h2_gather_ns,
        );
        prometheus_hist(
            &mut out,
            "sudoku_scrub_tick_ns",
            "Scrub-tick duration",
            &self.scrub_tick_ns,
        );
        prometheus_hist(
            &mut out,
            "sudoku_tick_lag_ns",
            "Scrub-tick lag",
            &self.tick_lag_ns,
        );
        if let Some(audit) = &self.audit {
            let fgauge = |out: &mut String, name: &str, help: &str, v: f64| {
                let v = if v.is_finite() { v } else { 0.0 };
                out.push_str(&format!(
                    "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
                ));
            };
            counter(
                &mut out,
                "sudoku_scrub_deadline_misses_total",
                "Packet sweeps whose achieved interval exceeded the hard deadline",
                audit.scrub_deadline_misses,
            );
            gauge(
                &mut out,
                "sudoku_scrub_deadline_ns",
                "Configured hard scrub deadline",
                audit.scrub_deadline_ns,
            );
            out.push_str(
                "# HELP sudoku_scrub_deadline_misses Deadline misses per shard\n\
                 # TYPE sudoku_scrub_deadline_misses counter\n",
            );
            for (shard, misses) in audit.per_shard_misses.iter().enumerate() {
                out.push_str(&format!(
                    "sudoku_scrub_deadline_misses{{shard=\"{shard}\"}} {misses}\n"
                ));
            }
            out.push_str(
                "# HELP sudoku_scrub_staleness_ns Worst live packet staleness per shard\n\
                 # TYPE sudoku_scrub_staleness_ns gauge\n",
            );
            for (shard, ns) in audit.per_shard_worst_staleness_ns.iter().enumerate() {
                out.push_str(&format!(
                    "sudoku_scrub_staleness_ns{{shard=\"{shard}\"}} {ns}\n"
                ));
            }
            prometheus_hist(
                &mut out,
                "sudoku_achieved_scrub_interval_ns",
                "Achieved per-packet scrub interval",
                &audit.achieved_scrub_interval_ns,
            );
            fgauge(
                &mut out,
                "sudoku_observed_ber",
                "Observed per-interval raw bit-error rate (slow window)",
                audit.observed_ber,
            );
            fgauge(
                &mut out,
                "sudoku_projected_due_fit",
                "Projected DUE FIT at the observed BER",
                audit.projected_fit,
            );
            fgauge(
                &mut out,
                "sudoku_error_budget_burn_fast",
                "Fast-window error-budget burn rate",
                audit.burn_fast,
            );
            fgauge(
                &mut out,
                "sudoku_error_budget_burn_slow",
                "Slow-window error-budget burn rate",
                audit.burn_slow,
            );
            counter(
                &mut out,
                "sudoku_alerts_critical_total",
                "Critical alerts raised",
                audit.alerts_critical,
            );
            counter(
                &mut out,
                "sudoku_alerts_dropped_total",
                "Alerts evicted from the ring before scrape",
                audit.alerts_dropped,
            );
            out.push_str(
                "# HELP sudoku_alerts_total Alerts raised, by class\n\
                 # TYPE sudoku_alerts_total counter\n",
            );
            for (class, n) in &audit.alerts_by_class {
                out.push_str(&format!("sudoku_alerts_total{{class=\"{class}\"}} {n}\n"));
            }
        }
        out
    }
}

/// Renders one histogram in Prometheus exposition shape: cumulative `le`
/// buckets (sparse — only buckets that change the cumulative count, plus
/// `+Inf`), then `_sum` and `_count`.
fn prometheus_hist(out: &mut String, name: &str, help: &str, h: &Histogram) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    for (bound, count) in h.all_buckets() {
        if count == 0 {
            continue;
        }
        cumulative += count;
        if bound == u64::MAX {
            continue; // folded into +Inf below
        }
        out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
    out.push_str(&format!("{name}_sum {}\n", h.sum()));
    out.push_str(&format!("{name}_count {}\n", h.count()));
}

/// Bounded ring of the most recent [`TelemetrySnapshot`]s — the in-memory
/// half of the flight recorder. A crash or chaos event leaves the last
/// `cap × sample_every` seconds of system state here (and, when a JSONL
/// path is configured, on disk).
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Mutex<VecDeque<TelemetrySnapshot>>,
    cap: usize,
    pushed: AtomicU64,
}

impl FlightRecorder {
    /// An empty recorder keeping the most recent `cap` snapshots.
    pub fn new(cap: usize) -> Self {
        FlightRecorder {
            ring: Mutex::new(VecDeque::with_capacity(cap.max(1))),
            cap: cap.max(1),
            pushed: AtomicU64::new(0),
        }
    }

    /// Appends a snapshot, evicting the oldest at capacity.
    pub fn push(&self, snap: TelemetrySnapshot) {
        self.pushed.fetch_add(1, Ordering::Relaxed);
        if let Ok(mut ring) = self.ring.lock() {
            if ring.len() == self.cap {
                ring.pop_front();
            }
            ring.push_back(snap);
        }
    }

    /// The most recent snapshot, if any.
    pub fn latest(&self) -> Option<TelemetrySnapshot> {
        self.ring.lock().ok().and_then(|r| r.back().cloned())
    }

    /// Every retained snapshot, oldest first.
    pub fn snapshots(&self) -> Vec<TelemetrySnapshot> {
        self.ring
            .lock()
            .map(|r| r.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Snapshots retained right now.
    pub fn len(&self) -> usize {
        self.ring.lock().map(|r| r.len()).unwrap_or(0)
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshots ever pushed (retained or evicted).
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::ShardedCache;
    use sudoku_core::{Scheme, SudokuConfig};

    fn snap(seq: u64) -> TelemetrySnapshot {
        let state = ShardedCache::new(SudokuConfig::small(Scheme::Z, 256, 16), 2).unwrap();
        let reg = TelemetryRegistry::new(2);
        TelemetrySnapshot::capture(seq, &state, &reg)
    }

    #[test]
    fn registry_counts_and_phases() {
        let reg = TelemetryRegistry::new(4);
        reg.reads.inc();
        reg.reads.inc();
        reg.depth(2).inc();
        assert_eq!(reg.queue_depths(), vec![0, 0, 1, 0]);
        reg.note_request(TraceRecord {
            trace: 0,
            shard: 1,
            write: false,
            path: TracePath::Queued,
            outcome: TraceOutcome::Ok,
            queue_wait_ns: 500,
            service_ns: 1500,
            h2_ns: 0,
        });
        reg.note_request(TraceRecord {
            trace: 1,
            shard: 0,
            write: true,
            path: TracePath::Inline,
            outcome: TraceOutcome::Ok,
            queue_wait_ns: 100,
            service_ns: 900,
            h2_ns: 400,
        });
        assert_eq!(reg.read_latency_ns.snapshot().count(), 1);
        assert_eq!(reg.write_latency_ns.snapshot().count(), 1);
        assert_eq!(reg.queue_wait_ns.snapshot().count(), 2);
        assert_eq!(reg.h2_gather_ns.snapshot().count(), 1);
        // trace 0 is a sample multiple; trace 1 is not.
        assert_eq!(reg.recent_traces().len(), 1);
        let hists = reg.service_hists();
        assert_eq!(hists.read_latency_ns.count(), 1);
        assert_eq!(hists.read_latency_ns.max(), 2000);
    }

    #[test]
    fn snapshot_json_and_prometheus_render() {
        let state = ShardedCache::new(SudokuConfig::small(Scheme::Z, 256, 16), 2).unwrap();
        let reg = TelemetryRegistry::new(2);
        reg.reads.add(3);
        reg.note_request(TraceRecord {
            trace: 0,
            shard: 0,
            write: false,
            path: TracePath::Lockfree,
            outcome: TraceOutcome::Ok,
            queue_wait_ns: 100,
            service_ns: 200,
            h2_ns: 0,
        });
        let snap = TelemetrySnapshot::capture(7, &state, &reg);
        assert!(snap.healthy());
        let json = snap.to_json();
        assert!(json.contains("\"seq\":7"), "{json}");
        assert!(json.contains("\"reads\":3"), "{json}");
        assert!(json.contains("\"recent_traces\":[{"), "{json}");
        assert!(json.contains("\"queue_wait_ns\""), "{json}");
        let prom = snap.to_prometheus();
        assert!(prom.contains("sudoku_reads_total 3"), "{prom}");
        assert!(prom.contains("sudoku_shard_up{shard=\"0\"} 1"), "{prom}");
        assert!(
            prom.contains("sudoku_read_latency_ns_bucket{le=\"+Inf\"} 1"),
            "{prom}"
        );
        assert!(prom.contains("sudoku_read_latency_ns_count 1"), "{prom}");
        assert!(
            prom.contains("# TYPE sudoku_ecc1_repairs_total counter"),
            "{prom}"
        );
    }

    #[test]
    fn quarantine_shows_in_snapshot_health() {
        let state = ShardedCache::new(SudokuConfig::small(Scheme::Z, 256, 16), 2).unwrap();
        let reg = TelemetryRegistry::new(2);
        state.health().quarantine(1);
        let snap = TelemetrySnapshot::capture(0, &state, &reg);
        assert!(!snap.healthy());
        assert_eq!(snap.quarantined, vec![1]);
        assert_eq!(snap.shards_up, 1);
        let prom = snap.to_prometheus();
        assert!(prom.contains("sudoku_shard_up{shard=\"1\"} 0"), "{prom}");
    }

    #[test]
    fn flight_recorder_is_bounded_fifo() {
        let recorder = FlightRecorder::new(3);
        assert!(recorder.is_empty());
        for seq in 0..5 {
            recorder.push(snap(seq));
        }
        assert_eq!(recorder.len(), 3);
        assert_eq!(recorder.pushed(), 5);
        let seqs: Vec<u64> = recorder.snapshots().iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(recorder.latest().unwrap().seq, 4);
    }
}
