//! A minimal Prometheus text-format (version 0.0.4) parser, for
//! *validating* what the exporter serves — tests and CI scrape
//! `/metrics` and run it through [`parse`] instead of grepping for
//! substrings.
//!
//! Covers the subset the exporter emits: `# HELP`/`# TYPE` comments,
//! plain samples, labeled samples, and histogram series
//! (`_bucket`/`_sum`/`_count`). [`PromText::check_histograms`] verifies
//! the invariants Prometheus itself would enforce at scrape time:
//! cumulative non-decreasing buckets, a `+Inf` bucket, and
//! `_count` == the `+Inf` bucket.

use std::collections::BTreeMap;
use std::fmt;

/// One sample line: `name{labels} value`.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in emission order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, when present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed exposition: samples in document order plus the HELP/TYPE
/// metadata.
#[derive(Clone, Debug, Default)]
pub struct PromText {
    /// Every sample line, in order.
    pub samples: Vec<Sample>,
    /// `# TYPE` declarations: family name → type string.
    pub types: BTreeMap<String, String>,
    /// `# HELP` declarations: family name → help string.
    pub helps: BTreeMap<String, String>,
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, reason: impl Into<String>) -> ParseError {
    ParseError {
        line,
        reason: reason.into(),
    }
}

fn is_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parses a value token: decimal, scientific, `+Inf`, `-Inf`, `NaN`.
fn parse_value(tok: &str) -> Option<f64> {
    match tok {
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => tok.parse().ok(),
    }
}

/// Parses the `{k="v",...}` label block (input excludes the braces).
fn parse_labels(body: &str, line_no: usize) -> Result<Vec<(String, String)>, ParseError> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| err(line_no, "label without '='"))?;
        let key = rest[..eq].trim();
        if !is_name(key) {
            return Err(err(line_no, format!("bad label name {key:?}")));
        }
        rest = rest[eq + 1..].trim_start();
        if !rest.starts_with('"') {
            return Err(err(line_no, "label value must be quoted"));
        }
        // Scan the quoted value honoring \" escapes.
        let mut value = String::new();
        let mut chars = rest[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    _ => return Err(err(line_no, "bad escape in label value")),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| err(line_no, "unterminated label value"))?;
        labels.push((key.to_string(), value));
        rest = rest[1 + end + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err(err(line_no, "expected ',' between labels"));
        }
    }
    Ok(labels)
}

/// Parses a full exposition body.
///
/// # Errors
///
/// The first malformed line, with its number and a reason.
pub fn parse(text: &str) -> Result<PromText, ParseError> {
    let mut out = PromText::default();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("HELP ") {
                let (name, help) = rest.split_once(' ').map_or((rest, ""), |(n, h)| (n, h));
                if !is_name(name) {
                    return Err(err(line_no, format!("bad HELP metric name {name:?}")));
                }
                out.helps.insert(name.to_string(), help.to_string());
            } else if let Some(rest) = comment.strip_prefix("TYPE ") {
                let (name, kind) = rest
                    .split_once(' ')
                    .ok_or_else(|| err(line_no, "TYPE without a kind"))?;
                if !is_name(name) {
                    return Err(err(line_no, format!("bad TYPE metric name {name:?}")));
                }
                match kind {
                    "counter" | "gauge" | "histogram" | "summary" | "untyped" => {}
                    other => return Err(err(line_no, format!("unknown TYPE {other:?}"))),
                }
                out.types.insert(name.to_string(), kind.to_string());
            }
            // Other comments are legal and skipped.
            continue;
        }
        // Sample: name[{labels}] value
        let (name_part, rest) = match line.find('{') {
            Some(brace) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| err(line_no, "unclosed label block"))?;
                if close < brace {
                    return Err(err(line_no, "unclosed label block"));
                }
                (&line[..brace], {
                    let labels = parse_labels(&line[brace + 1..close], line_no)?;
                    let value_tok = line[close + 1..].trim();
                    Some((labels, value_tok))
                })
            }
            None => {
                let mut it = line.split_whitespace();
                let name = it.next().unwrap_or("");
                let value_tok = it
                    .next()
                    .ok_or_else(|| err(line_no, "sample without value"))?;
                if it.next().is_some() {
                    return Err(err(line_no, "trailing tokens after value"));
                }
                (name, Some((Vec::new(), value_tok)))
            }
        };
        let name = name_part.trim();
        if !is_name(name) {
            return Err(err(line_no, format!("bad metric name {name:?}")));
        }
        let (labels, value_tok) = rest.unwrap();
        if value_tok.is_empty() {
            return Err(err(line_no, "sample without value"));
        }
        let value = parse_value(value_tok)
            .ok_or_else(|| err(line_no, format!("bad value {value_tok:?}")))?;
        out.samples.push(Sample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(out)
}

impl PromText {
    /// The single unlabeled sample of `name`, when present exactly once.
    pub fn value(&self, name: &str) -> Option<f64> {
        let mut hits = self
            .samples
            .iter()
            .filter(|s| s.name == name && s.labels.is_empty());
        let first = hits.next()?;
        if hits.next().is_some() {
            return None;
        }
        Some(first.value)
    }

    /// All samples of `name` (any labels), in order.
    pub fn values(&self, name: &str) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }

    /// Family names that declared `# TYPE <name> histogram`.
    pub fn histogram_families(&self) -> Vec<&str> {
        self.types
            .iter()
            .filter(|(_, kind)| kind.as_str() == "histogram")
            .map(|(name, _)| name.as_str())
            .collect()
    }

    /// Verifies every declared histogram family: buckets sorted by `le`,
    /// cumulative counts non-decreasing, a `+Inf` bucket present, and
    /// `_count` equal to the `+Inf` bucket.
    ///
    /// # Errors
    ///
    /// A description of the first violated invariant.
    pub fn check_histograms(&self) -> Result<(), String> {
        for family in self.histogram_families() {
            let buckets: Vec<&Sample> = self.values(&format!("{family}_bucket"));
            if buckets.is_empty() {
                return Err(format!("histogram {family} has no _bucket samples"));
            }
            let mut prev_le = f64::NEG_INFINITY;
            let mut prev_count = 0.0;
            let mut inf_count = None;
            for b in &buckets {
                let le = b
                    .label("le")
                    .and_then(parse_value_opt)
                    .ok_or_else(|| format!("histogram {family}: bucket without le"))?;
                if le <= prev_le {
                    return Err(format!("histogram {family}: le not increasing at {le}"));
                }
                if b.value < prev_count {
                    return Err(format!(
                        "histogram {family}: cumulative count decreased at le={le}"
                    ));
                }
                prev_le = le;
                prev_count = b.value;
                if le.is_infinite() {
                    inf_count = Some(b.value);
                }
            }
            let inf =
                inf_count.ok_or_else(|| format!("histogram {family}: missing +Inf bucket"))?;
            let count = self
                .value(&format!("{family}_count"))
                .ok_or_else(|| format!("histogram {family}: missing _count"))?;
            if count != inf {
                return Err(format!(
                    "histogram {family}: _count {count} != +Inf bucket {inf}"
                ));
            }
            if self.value(&format!("{family}_sum")).is_none() {
                return Err(format!("histogram {family}: missing _sum"));
            }
        }
        Ok(())
    }
}

fn parse_value_opt(tok: &str) -> Option<f64> {
    parse_value(tok)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# HELP sudoku_reads_total Demand reads served.
# TYPE sudoku_reads_total counter
sudoku_reads_total 42
# TYPE sudoku_queue_depth gauge
sudoku_queue_depth{shard=\"0\"} 3
sudoku_queue_depth{shard=\"1\"} 0
# TYPE sudoku_read_latency_ns histogram
sudoku_read_latency_ns_bucket{le=\"1024\"} 10
sudoku_read_latency_ns_bucket{le=\"2048\"} 15
sudoku_read_latency_ns_bucket{le=\"+Inf\"} 16
sudoku_read_latency_ns_sum 31744
sudoku_read_latency_ns_count 16
";

    #[test]
    fn parses_the_exporter_subset() {
        let p = parse(GOOD).unwrap();
        assert_eq!(p.value("sudoku_reads_total"), Some(42.0));
        assert_eq!(p.types.get("sudoku_read_latency_ns").unwrap(), "histogram");
        assert_eq!(
            p.helps.get("sudoku_reads_total").unwrap(),
            "Demand reads served."
        );
        let depths = p.values("sudoku_queue_depth");
        assert_eq!(depths.len(), 2);
        assert_eq!(depths[0].label("shard"), Some("0"));
        p.check_histograms().unwrap();
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("sudoku_reads_total").is_err(), "missing value");
        assert!(parse("sudoku_reads_total abc").is_err(), "bad value");
        assert!(parse("bad{le=\"1\" 3").is_err(), "unclosed labels");
        assert!(parse("bad{le=1} 3").is_err(), "unquoted label value");
        assert!(parse("# TYPE x wat\n").is_err(), "unknown type");
        assert!(parse("9bad 1").is_err(), "bad metric name");
    }

    #[test]
    fn catches_broken_histograms() {
        let no_inf = "\
# TYPE h histogram
h_bucket{le=\"1\"} 1
h_sum 1
h_count 1
";
        assert!(parse(no_inf).unwrap().check_histograms().is_err());
        let decreasing = "\
# TYPE h histogram
h_bucket{le=\"1\"} 5
h_bucket{le=\"2\"} 3
h_bucket{le=\"+Inf\"} 5
h_sum 1
h_count 5
";
        assert!(parse(decreasing).unwrap().check_histograms().is_err());
        let count_mismatch = "\
# TYPE h histogram
h_bucket{le=\"+Inf\"} 5
h_sum 1
h_count 4
";
        assert!(parse(count_mismatch).unwrap().check_histograms().is_err());
    }

    #[test]
    fn label_escapes_roundtrip() {
        let p = parse("m{msg=\"a\\\"b\\\\c\\nd\"} 1\n").unwrap();
        assert_eq!(p.samples[0].label("msg"), Some("a\"b\\c\nd"));
    }
}
