//! Shard-count invariance: for a fixed seed, an `N`-shard deterministic
//! scrub must produce exactly the same [`ScrubReport`], the same aggregate
//! [`CacheStats`], and the same stored lines as the single-threaded
//! [`SudokuCache`] reference — for every `N ∈ {1, 2, 4, 8}`.

use proptest::prelude::*;
use sudoku_codes::LineData;
use sudoku_core::{Scheme, SudokuCache, SudokuConfig};
use sudoku_fault::FaultInjector;
use sudoku_svc::ShardedCache;

const LINES: u64 = 1024;
const GROUP: u32 = 16;

fn golden(i: u64) -> LineData {
    let mut d = LineData::zero();
    d.set_bit((i as usize * 37) % 512, true);
    d.set_bit((i as usize * 11 + 201) % 512, true);
    d
}

/// Runs one scrub campaign on the reference cache and on an `n_shards`
/// sharded cache, asserting identical reports, stats, and stored lines.
fn assert_invariant(n_shards: usize, seed: u64, ber: f64) {
    let config = SudokuConfig::small(Scheme::Z, LINES, GROUP);
    let mut reference = SudokuCache::new_sparse(config).expect("valid config");
    let sharded = ShardedCache::new(config, n_shards).expect("valid shard count");
    for i in 0..LINES {
        let data = golden(i);
        reference.write(i, &data);
        sharded.write(i, &data).unwrap();
    }
    let plan = FaultInjector::new(ber, seed).resolved_plan(LINES);
    for (line, bits) in &plan {
        for &bit in bits {
            reference.inject_fault(*line, bit);
        }
    }
    sharded.apply_resolved_plan(&plan);
    let hints: Vec<u64> = plan.iter().map(|(line, _)| *line).collect();

    let reference_report = reference.scrub_lines(&hints);
    let sharded_report = sharded.scrub_lines(&hints);

    assert_eq!(
        reference_report, sharded_report,
        "scrub reports diverge at n_shards={n_shards} seed={seed} ber={ber}"
    );
    assert_eq!(
        *reference.stats(),
        sharded.stats(),
        "aggregate stats diverge at n_shards={n_shards} seed={seed} ber={ber}"
    );
    for i in 0..LINES {
        assert_eq!(
            reference.stored_line(i),
            sharded.stored_line(i),
            "stored line {i} diverges at n_shards={n_shards} seed={seed} ber={ber}"
        );
    }
}

#[test]
fn scrub_outcome_is_invariant_in_shard_count() {
    for n_shards in [1, 2, 4, 8] {
        assert_invariant(n_shards, 0xD5D0_0001, 2e-3);
    }
}

#[test]
fn heavy_fault_load_stays_invariant() {
    // High enough BER that RAID-4, SDR, and Hash-2 all fire.
    for n_shards in [1, 2, 4, 8] {
        assert_invariant(n_shards, 7, 8e-3);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: N-shard scrub ≡ single-threaded scrub for arbitrary
    /// seeds and fault rates across all supported shard counts.
    #[test]
    fn sharded_scrub_matches_reference(
        seed in any::<u64>(),
        ber_idx in 0usize..3,
        shard_idx in 0usize..4,
    ) {
        let ber = [5e-4, 2e-3, 5e-3][ber_idx];
        let n_shards = [1usize, 2, 4, 8][shard_idx];
        assert_invariant(n_shards, seed, ber);
    }
}
