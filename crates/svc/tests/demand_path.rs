//! Demand-path equivalence: the batched/slot-completed/lock-free service
//! front-end must be *bit-identical* to driving the same [`ShardedCache`]
//! engine sequentially — same read results, same stored lines, same
//! aggregate counters — for every shard count, with faults in flight.
//! (Scrub-side shard invariance vs the single-threaded `SudokuCache` is
//! covered by `determinism.rs`; this file pins the *front-end*: packets,
//! completion slots, and the seqlock view must add no observable state.)
//! Plus a torn-read soak proving the seqlock view never serves a
//! half-written line, and channel-path coverage for `read_to`.

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use sudoku_codes::LineData;
use sudoku_fault::FaultInjector;
use sudoku_svc::{ReadReply, Service, ServiceConfig, ShardedCache};

const LINES: u64 = 256;

fn pattern(tag: u64) -> LineData {
    let mut d = LineData::zero();
    d.set_bit((tag as usize * 37) % 512, true);
    d.set_bit((tag as usize * 11 + 201) % 512, true);
    d
}

/// Replays one op sequence against a sequentially-driven [`ShardedCache`]
/// and a running `n_shards` service (single client, so the global order
/// is the issue order), asserting identical per-op results, stored lines,
/// and stats.
fn assert_demand_equivalence(n_shards: usize, seed: u64, ber: f64, ops: &[(u64, bool)]) {
    let mut svc_config = ServiceConfig::small(LINES, n_shards, 0.0, seed);
    svc_config.scrub_every = None;
    let reference = ShardedCache::new(svc_config.cache, n_shards).expect("valid config");
    let service = Service::start(svc_config).unwrap();
    let handle = service.handle();

    // Shared initial footprint, then one identical fault plan on both
    // sides: reads below must drive the same ladder repairs in both.
    for line in 0..LINES {
        let data = pattern(line);
        reference.write(line, &data).unwrap();
        handle.write(line, &data).unwrap();
    }
    // Writes complete at acceptance; `inject_fault` below bypasses the
    // queue, so drain the footprint first. A paired read sweep is the
    // barrier: each service read of a pending line rides the FIFO behind
    // its write, and the reference read keeps the counters identical.
    drain_sweep(&reference, &handle);
    let plan = FaultInjector::new(ber, seed).resolved_plan(LINES);
    for (line, bits) in &plan {
        for &bit in bits {
            reference.inject_fault(*line, bit);
            service.state().inject_fault(*line, bit);
        }
    }

    for (i, &(line, is_write)) in ops.iter().enumerate() {
        if is_write {
            let data = pattern(line ^ (i as u64) << 8);
            reference.write(line, &data).unwrap();
            handle.write(line, &data).unwrap();
        } else {
            let expect = reference.read(line);
            match (expect, handle.read(line)) {
                (Ok(want), Ok(got)) => assert_eq!(
                    want, got,
                    "read {line} diverges at n_shards={n_shards} seed={seed} op {i}"
                ),
                (Err(_), Err(e)) => assert!(
                    e.is_due(),
                    "reference DUE but service returned {e} (line {line}, op {i})"
                ),
                (want, got) => panic!(
                    "read {line} diverges at n_shards={n_shards} seed={seed} op {i}: \
                     reference {want:?} vs service {got:?}"
                ),
            }
        }
    }

    // Drain any writes still pending in the shard queues (same paired
    // sweep: identical repairs and counters on both sides), then compare.
    drain_sweep(&reference, &handle);

    // Bit-identity of the stored array and of the aggregate counters —
    // the lock-free view hits are folded into `stats().reads/crc_checks`
    // exactly as the reference's locked read path would have counted them.
    for line in 0..LINES {
        assert_eq!(
            reference.stored_line(line),
            service.state().stored_line(line),
            "stored line {line} diverges at n_shards={n_shards} seed={seed}"
        );
    }
    assert_eq!(
        reference.stats(),
        service.state().stats(),
        "aggregate stats diverge at n_shards={n_shards} seed={seed}"
    );
    let report = service.shutdown();
    assert!(report.worker_panics.is_empty());
    assert_eq!(report.failed_writes, 0, "no write may fail to apply");
}

/// Paired full-array read: on the service side every read of a line with
/// a write still pending takes the FIFO queue path *behind* that write,
/// so when the sweep returns all accepted writes have been applied. The
/// reference read keeps repairs and counters bit-identical.
fn drain_sweep(reference: &ShardedCache, handle: &sudoku_svc::ServiceHandle) {
    for line in 0..LINES {
        match (reference.read(line), handle.read(line)) {
            (Ok(want), Ok(got)) => assert_eq!(want, got, "drain sweep diverges at line {line}"),
            (Err(_), Err(e)) => assert!(e.is_due(), "drain sweep: reference DUE, service {e}"),
            (want, got) => panic!("drain sweep diverges at line {line}: {want:?} vs {got:?}"),
        }
    }
}

/// Deterministic op mix: zipf-ish revisits plus a sweep, ~25% writes.
fn fixed_ops(seed: u64, n: usize) -> Vec<(u64, bool)> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) % LINES, (x >> 13).is_multiple_of(4))
        })
        .collect()
}

#[test]
fn demand_path_matches_reference_across_shard_counts() {
    let ops = fixed_ops(0xD5D0_0002, 512);
    for n_shards in [1, 2, 4, 8] {
        assert_demand_equivalence(n_shards, 0xD5D0_0002, 2e-3, &ops);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: the packetized, slot-completed, seqlock-fronted demand
    /// path ≡ the single-threaded reference for arbitrary seeds, fault
    /// rates, and op mixes across all supported shard counts.
    #[test]
    fn packetized_service_is_bit_identical_to_reference(
        seed in any::<u64>(),
        ber_idx in 0usize..3,
        shard_idx in 0usize..4,
    ) {
        let ber = [5e-4, 2e-3, 5e-3][ber_idx];
        let n_shards = [1usize, 2, 4, 8][shard_idx];
        assert_demand_equivalence(n_shards, seed, ber, &fixed_ops(seed, 384));
    }
}

/// Torn-read soak: one writer hammers a single hot line alternating
/// between two values while readers race it through the lock-free view.
/// Every read must observe one of the two published values (or the DUE
/// path) — never a torn mix — and the fast path must actually fire.
#[test]
fn seqlock_view_never_serves_torn_lines() {
    let mut config = ServiceConfig::small(256, 2, 0.0, 99);
    config.scrub_every = None;
    let service = Service::start(config).unwrap();
    let a = pattern(1);
    let b = pattern(2);
    let line = 7u64;
    service.handle().write(line, &a).unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let writer_handle = service.handle();
        let (wa, wb) = (a, b);
        let stop = &stop;
        s.spawn(move || {
            for i in 0..2_000u64 {
                let data = if i % 2 == 0 { wb } else { wa };
                writer_handle.write(line, &data).unwrap();
            }
            stop.store(true, Ordering::Release);
        });
        for _ in 0..3 {
            let reader_handle = service.handle();
            s.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let got = reader_handle.read(line).unwrap();
                    assert!(got == a || got == b, "torn read: {got:?}");
                }
            });
        }
    });
    // First read drains the writer's still-pending tail through the FIFO;
    // after that the line is published and must be served lock-free.
    let handle = service.handle();
    let settled = handle.read(line).unwrap();
    assert!(settled == a || settled == b, "torn settle: {settled:?}");
    for _ in 0..8 {
        assert_eq!(handle.read(line).unwrap(), settled);
    }
    let report = service.shutdown();
    assert_eq!(report.failed_writes, 0);
    assert!(
        report.lockfree_reads >= 8,
        "fast path never fired: {report:?}"
    );
}

/// The channel-based `read_to` path (kept for callers that multiplex many
/// in-flight reads onto one receiver) still resolves every request with
/// the right data and a live trace ID.
#[test]
fn read_to_channel_path_still_serves() {
    let mut config = ServiceConfig::small(256, 2, 0.0, 17);
    config.scrub_every = None;
    let service = Service::start(config).unwrap();
    let handle = service.handle();
    for line in 0..256u64 {
        handle.write(line, &pattern(line)).unwrap();
    }
    let (tx, rx) = std::sync::mpsc::channel::<ReadReply>();
    for line in 0..256u64 {
        handle.read_to(line, &tx).unwrap();
    }
    drop(tx);
    let mut seen = 0u64;
    while let Ok(reply) = rx.recv_timeout(Duration::from_secs(5)) {
        assert_eq!(reply.result.unwrap(), pattern(reply.line));
        seen += 1;
    }
    assert_eq!(seen, 256);
    let report = service.shutdown();
    assert_eq!(report.reads, 256);
}
