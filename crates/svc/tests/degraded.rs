//! Degraded-mode service tests: worker panics, poisoned locks, stuck-at
//! cells, and shutdown under backpressure — the service must degrade
//! (typed errors, quarantine, sparing), never panic a client or hang.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use sudoku_codes::LineData;
use sudoku_core::{Scheme, SudokuConfig};
use sudoku_fault::StuckBitMap;
use sudoku_svc::{DegradedConfig, Service, ServiceConfig, ServiceError};

fn data_with(bits: &[usize]) -> LineData {
    let mut d = LineData::zero();
    for &b in bits {
        d.set_bit(b, true);
    }
    d
}

fn wait_for_quarantine(handle: &sudoku_svc::ServiceHandle, shard: usize) {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while !handle.quarantined().contains(&shard) {
        assert!(
            std::time::Instant::now() < deadline,
            "quarantine of shard {shard} never landed"
        );
        std::thread::sleep(Duration::from_micros(100));
    }
}

/// Tentpole: a worker panic kills the shard, not the process. The other
/// N−1 shards serve every one of their lines; the dead shard fails fast
/// with `ShardDown`; the report names the panicked worker.
#[test]
fn worker_panic_quarantines_shard_and_others_keep_serving() {
    let mut config = ServiceConfig::small(256, 4, 0.0, 21);
    config.scrub_every = None;
    let service = Service::start(config).unwrap();
    let handle = service.handle();
    for line in 0..256u64 {
        handle
            .write(line, &data_with(&[line as usize % 512]))
            .unwrap();
    }
    let victim = handle.shard_of(0);
    handle.inject_worker_panic(victim, false).unwrap();
    wait_for_quarantine(&handle, victim);
    let mut served = 0u64;
    let mut rejected = 0u64;
    for line in 0..256u64 {
        match handle.read(line) {
            Ok(data) => {
                assert_eq!(data, data_with(&[line as usize % 512]));
                assert_ne!(handle.shard_of(line), victim);
                served += 1;
            }
            Err(ServiceError::ShardDown(s)) => {
                assert_eq!(s, victim);
                rejected += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(served, 192, "3 of 4 shards serve all their lines");
    assert_eq!(rejected, 64);
    let report = service.shutdown();
    assert_eq!(report.worker_panics, vec![victim]);
    assert_eq!(report.quarantined, vec![victim]);
    assert!(!report.daemon_panicked);
    assert!(report.degraded.shard_down_rejects >= 64);
}

/// Tentpole: a panic while *holding the shard mutex* poisons it; the
/// service must treat the poisoned lock as shard death, not unwind into
/// every thread that touches the mutex afterwards.
#[test]
fn poisoned_lock_panic_degrades_cleanly() {
    let mut config = ServiceConfig::small(256, 4, 0.0, 22);
    // Keep the daemon on: it must survive meeting the poisoned mutex.
    config.scrub_every = Some(Duration::from_millis(1));
    let service = Service::start(config).unwrap();
    let handle = service.handle();
    for line in 0..256u64 {
        handle
            .write(line, &data_with(&[line as usize % 512]))
            .unwrap();
    }
    let victim = handle.shard_of(7);
    handle.inject_worker_panic(victim, true).unwrap();
    wait_for_quarantine(&handle, victim);
    // Reads to live shards keep working while the daemon keeps ticking
    // around the corpse.
    for line in 0..256u64 {
        if handle.shard_of(line) != victim {
            assert_eq!(
                handle.read(line).unwrap(),
                data_with(&[line as usize % 512])
            );
        }
    }
    std::thread::sleep(Duration::from_millis(5));
    let report = service.shutdown();
    assert_eq!(report.worker_panics, vec![victim]);
    assert!(!report.daemon_panicked, "daemon must survive a dead shard");
    assert!(report.scrub_ticks > 0);
    // Telemetry harvested from the poisoned shard too: its counters from
    // before the panic are present (it served 64 of the 256 writes).
    assert_eq!(report.stats.writes, 256);
}

/// Satellite: shutdown during backpressure. Producers blocked on a full
/// shard queue while `shutdown()` runs must all unblock with a result or
/// a `ServiceError` — no deadlock, no panic.
#[test]
fn shutdown_under_backpressure_unblocks_all_producers() {
    for n_shards in [1usize, 4] {
        let mut config = ServiceConfig::small(256, n_shards, 0.0, 23);
        config.scrub_every = None;
        config.queue_depth = 2; // tiny queue: producers block immediately
        let service = Service::start(config).unwrap();
        let outcomes = Arc::new(AtomicU64::new(0));
        let errors = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for p in 0..8u64 {
                let handle = service.handle();
                let outcomes = Arc::clone(&outcomes);
                let errors = Arc::clone(&errors);
                s.spawn(move || {
                    for i in 0..200u64 {
                        let line = (p * 200 + i) % 256;
                        match handle.write(line, &data_with(&[line as usize % 512])) {
                            Ok(()) => outcomes.fetch_add(1, Ordering::Relaxed),
                            Err(ServiceError::ShuttingDown) => {
                                errors.fetch_add(1, Ordering::Relaxed)
                            }
                            Err(e) => panic!("unexpected error: {e}"),
                        };
                    }
                });
            }
            // Let producers pile onto the tiny queues, then pull the rug.
            std::thread::sleep(Duration::from_millis(2));
            let report = service.shutdown();
            assert!(report.worker_panics.is_empty());
            // If this scope exits, every producer unblocked. Every write
            // the service accepted before the drain marker was served.
            assert!(report.writes <= 8 * 200);
        });
        let done = outcomes.load(Ordering::Relaxed) + errors.load(Ordering::Relaxed);
        assert_eq!(done, 8 * 200, "every producer request resolved");
    }
}

/// Satellite: a read in flight on a shard that dies must resolve to a
/// `ServiceError`, never hang or panic. The victim's lines are faulted
/// first so the lock-free clean path cannot serve them — every read goes
/// through the shard queue, behind (or after) the worker-killing panic.
#[test]
fn read_stranded_by_worker_death_gets_error_not_hang() {
    let mut config = ServiceConfig::small(256, 2, 0.0, 24);
    config.scrub_every = None;
    config.queue_depth = 64;
    let service = Service::start(config).unwrap();
    let handle = service.handle();
    let victim = handle.shard_of(0);
    let stranded: Vec<u64> = (0..256u64)
        .filter(|&line| handle.shard_of(line) == victim)
        .collect();
    // One (ECC-correctable) flipped bit per line: harmless to the ladder,
    // but the inline CRC check fails, so the seqlock view misses and the
    // reads below must queue on the shard the panic is about to kill.
    for &line in &stranded {
        service.state().inject_fault(line, 3);
    }
    handle.inject_worker_panic(victim, false).unwrap();
    let mut got_errors = 0;
    for &line in &stranded {
        match handle.read(line) {
            Err(ServiceError::ShardDown(s)) => {
                assert_eq!(s, victim);
                got_errors += 1;
            }
            Err(ServiceError::ShuttingDown) => got_errors += 1,
            Ok(_) => panic!("read served by a dead shard"),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(got_errors, stranded.len());
    let report = service.shutdown();
    assert_eq!(report.worker_panics, vec![victim]);
}

/// Tentpole: stuck-at bits persist across scrubs without destroying
/// service-level correctness — every line keeps reading back its golden
/// value while the scrub daemon churns over the permanently faulty array.
#[test]
fn stuck_bits_survive_scrub_daemon_without_sdc() {
    let mut stuck = StuckBitMap::new();
    for i in 0..16u64 {
        stuck.insert(i * 16, ((i * 37) % 553) as u16, true);
    }
    let mut config = ServiceConfig::small(256, 4, 1e-4, 25);
    config.scrub_every = Some(Duration::from_millis(1));
    config.stuck = stuck;
    let service = Service::start(config).unwrap();
    let handle = service.handle();
    for line in 0..256u64 {
        handle
            .write(line, &data_with(&[line as usize % 512]))
            .unwrap();
    }
    std::thread::sleep(Duration::from_millis(30));
    for line in 0..256u64 {
        assert_eq!(
            handle.read(line).unwrap(),
            data_with(&[line as usize % 512]),
            "line {line}"
        );
    }
    let report = service.shutdown();
    assert!(report.fully_healthy(), "{report:?}");
    assert_eq!(report.degraded.stuck_lines, 16);
    assert!(report.degraded.stuck_reasserts > 0, "{report:?}");
    let json = report.to_json();
    assert!(json.contains("\"stuck_lines\":16"), "{json}");
    assert!(json.contains("\"daemon_panicked\":false"), "{json}");
}

/// Tentpole: a line whose stuck cells defeat even cross-shard recovery is
/// spared after repeated strikes — later writes land in the spare pool and
/// the line becomes readable again instead of being a DUE forever.
#[test]
fn hopeless_stuck_line_is_spared_and_rewritable() {
    // Same-position stuck pairs in one H1 group *and* aligned so that H2
    // also sees double faults: use Scheme::X (no second hash) for a
    // guaranteed-hopeless line with a tiny geometry.
    let mut stuck = StuckBitMap::new();
    for bit in [11u16, 22, 33, 44] {
        stuck.insert(2, bit, true);
        stuck.insert(3, bit, true);
    }
    let mut config = ServiceConfig::small(64, 2, 0.0, 26);
    config.cache = SudokuConfig::small(Scheme::X, 64, 16);
    config.scrub_every = None;
    config.stuck = stuck;
    config.degraded = DegradedConfig {
        spare_cap_per_shard: 4,
        strike_threshold: 2,
    };
    let service = Service::start(config).unwrap();
    let handle = service.handle();
    for line in 0..64u64 {
        handle
            .write(line, &data_with(&[line as usize % 512]))
            .unwrap();
    }
    // Two DUE reads strike the line into the spare pool.
    for _ in 0..2 {
        assert!(matches!(
            handle.read(2),
            Err(ServiceError::Uncorrectable(_))
        ));
    }
    // A rewrite lands in the spare slot; the line serves again.
    handle.write(2, &data_with(&[200])).unwrap();
    assert_eq!(handle.read(2).unwrap(), data_with(&[200]));
    let report = service.shutdown();
    assert!(report.degraded.spared_lines >= 1, "{report:?}");
    assert!(report.degraded.spare_writes >= 1, "{report:?}");
    assert!(report.degraded.spare_reads >= 1, "{report:?}");
    assert!(report.due_reads >= 2, "{report:?}");
}
