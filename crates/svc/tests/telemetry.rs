//! End-to-end soak of the live telemetry plane: a real service with the
//! sampler, flight recorder, JSONL time series, and scrape endpoint all
//! on, demand traffic flowing, and a chaos panic — asserting that what
//! the endpoints report matches what the service actually did, and that
//! a worker panic becomes visible through `/healthz` within one sampler
//! interval.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};
use sudoku_codes::LineData;
use sudoku_svc::{Service, ServiceConfig, TelemetryConfig};

const SAMPLE_EVERY: Duration = Duration::from_millis(20);

fn telemetry_service(lines: u64, seed: u64, jsonl: Option<&std::path::Path>) -> Service {
    let mut config = ServiceConfig::small(lines, 4, 1e-4, seed);
    config.telemetry = Some(TelemetryConfig {
        sample_every: SAMPLE_EVERY,
        flight_recorder_cap: 64,
        jsonl_path: jsonl.map(Into::into),
        port: Some(0), // ephemeral: tests never collide
    });
    Service::start(config).expect("service with telemetry starts")
}

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to exporter");
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn data_with(bit: usize) -> LineData {
    let mut d = LineData::zero();
    d.set_bit(bit % 512, true);
    d
}

#[test]
fn endpoints_serve_live_traffic_and_flight_recorder_fills() {
    let dir = std::env::temp_dir().join(format!("sudoku-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let jsonl = dir.join("flight.jsonl");
    let service = telemetry_service(1024, 11, Some(&jsonl));
    let addr = service.telemetry_addr().expect("exporter is on");
    let handle = service.handle();

    for line in 0..256u64 {
        handle.write(line, &data_with(line as usize)).unwrap();
        assert_eq!(handle.read(line).unwrap(), data_with(line as usize));
    }

    // /metrics mid-run: Prometheus text with the demand counters visible.
    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("sudoku_reads_total 256"),
        "reads visible mid-run: {metrics}"
    );
    assert!(metrics.contains("sudoku_writes_total 256"), "{metrics}");
    assert!(
        metrics.contains("# TYPE sudoku_read_latency_ns histogram"),
        "{metrics}"
    );
    assert!(
        metrics.contains("sudoku_read_latency_ns_count 256"),
        "{metrics}"
    );
    assert!(
        metrics.contains("sudoku_shard_up{shard=\"3\"} 1"),
        "{metrics}"
    );

    // /healthz mid-run: everything up.
    let (status, health) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(health.contains("\"status\":\"ok\""), "{health}");

    // /snapshot.json: coherent JSON with per-phase histograms and traces.
    let (status, snap) = http_get(addr, "/snapshot.json");
    assert_eq!(status, 200);
    assert!(snap.contains("\"queue_wait_ns\""), "{snap}");
    assert!(snap.contains("\"recent_traces\""), "{snap}");

    // The sampler fills the flight recorder and the JSONL time series.
    let deadline = Instant::now() + Duration::from_secs(10);
    let recorder = service.flight_recorder().expect("recorder is on").clone();
    while recorder.len() < 3 {
        assert!(Instant::now() < deadline, "sampler never ticked 3 times");
        std::thread::sleep(Duration::from_millis(5));
    }

    let report = service.shutdown();
    assert_eq!(report.reads, 256);
    assert_eq!(report.writes, 256);

    // Shutdown took a final snapshot: the last JSONL line reflects the
    // fully-drained system.
    let contents = std::fs::read_to_string(&jsonl).unwrap();
    let lines: Vec<&str> = contents.lines().collect();
    assert!(lines.len() >= 3, "JSONL has the sampled history");
    let last = lines.last().unwrap();
    assert!(
        last.contains("\"reads\":256"),
        "final snapshot is post-drain: {last}"
    );
    assert!(
        last.starts_with('{') && last.ends_with('}'),
        "JSONL lines are objects"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn worker_panic_reaches_healthz_within_one_sampler_interval() {
    let service = telemetry_service(1024, 13, None);
    let addr = service.telemetry_addr().expect("exporter is on");
    let handle = service.handle();
    for line in 0..64u64 {
        handle.write(line, &data_with(line as usize)).unwrap();
    }
    let (status, _) = http_get(addr, "/healthz");
    assert_eq!(status, 200);

    let victim = handle.shard_of(0);
    handle.inject_worker_panic(victim, false).unwrap();
    let injected = Instant::now();
    // One sampler interval is the advertised detection bound; /healthz is
    // computed live so it is normally far faster. Give the panic unwinding
    // machinery scheduling slack but assert the contract.
    let budget = SAMPLE_EVERY + Duration::from_secs(2);
    let detected = loop {
        let (status, body) = http_get(addr, "/healthz");
        if status == 503 {
            assert!(
                body.contains(&format!("\"quarantined\":[{victim}]")),
                "healthz names the dead shard: {body}"
            );
            assert!(body.contains("\"status\":\"degraded\""), "{body}");
            break injected.elapsed();
        }
        assert!(
            injected.elapsed() < budget,
            "quarantine not visible in /healthz after {budget:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    };
    assert!(detected < budget, "detected in {detected:?}");

    // /metrics keeps serving with the shard marked down.
    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains(&format!("sudoku_shard_up{{shard=\"{victim}\"}} 0")),
        "{metrics}"
    );

    let report = service.shutdown();
    assert_eq!(report.worker_panics, vec![victim]);
    assert_eq!(report.quarantined, vec![victim]);
}

#[test]
fn registry_snapshot_race_is_coherent_under_load() {
    // N client threads hammer the service while a reader snapshots the
    // registry continuously: counters must be monotone and histogram
    // counts must equal their bucket sums in every observation.
    let service = telemetry_service(2048, 17, None);
    let registry = service.registry().clone();
    let stop = std::sync::atomic::AtomicBool::new(false);
    let stop = &stop;
    std::thread::scope(|s| {
        for w in 0..4u64 {
            let handle = service.handle();
            s.spawn(move || {
                for i in 0..500u64 {
                    let line = (w * 512 + i) % 2048;
                    handle.write(line, &data_with(line as usize)).unwrap();
                    let _ = handle.read(line);
                }
            });
        }
        let reader = {
            let registry = registry.clone();
            s.spawn(move || {
                let mut last_reads = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let reads = registry.reads.get();
                    assert!(reads >= last_reads, "reads counter went backwards");
                    last_reads = reads;
                    let snap = registry.read_latency_ns.snapshot();
                    let bucket_sum: u64 = snap.all_buckets().iter().map(|&(_, c)| c).sum();
                    assert_eq!(snap.count(), bucket_sum, "snapshot must be coherent");
                    let hists = registry.service_hists();
                    assert!(hists.read_latency_ns.count() <= registry.reads.get() + 1);
                }
            })
        };
        // Writers joined by the scope; signal the reader once they drain.
        // (spawned handles join in drop order, so explicitly wait first)
        std::thread::sleep(Duration::from_millis(30));
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        reader.join().unwrap();
    });
    let report = service.shutdown();
    assert_eq!(report.writes, 2000);
}
