//! Cross-shard Hash-2 escalation: fault patterns a single shard provably
//! cannot resolve with its local Hash-1 ladder, resolved by the
//! coordinator's cross-shard SuDoku-Z pass.

use sudoku_codes::LineData;
use sudoku_core::{HashDim, Scheme, SudokuConfig};
use sudoku_svc::ShardedCache;

const LINES: u64 = 256;
const GROUP: u32 = 16;

fn golden(i: u64) -> LineData {
    let mut d = LineData::zero();
    d.set_bit((i as usize * 13) % 512, true);
    d
}

fn populated(n_shards: usize) -> ShardedCache {
    let config = SudokuConfig::small(Scheme::Z, LINES, GROUP);
    let sharded = ShardedCache::new(config, n_shards).expect("valid shard count");
    for i in 0..LINES {
        sharded.write(i, &golden(i)).unwrap();
    }
    sharded
}

/// The Fig-3(c) defeat pattern for Hash-1: two members of the *same* H1
/// group corrupted at the *same* bit positions. The group parity cancels,
/// so RAID-4 sees zero mismatches and SDR has nothing to anchor on —
/// shard-local recovery is structurally blind to it.
fn inject_h1_defeating_pair(sharded: &ShardedCache) -> [u64; 2] {
    let victims = [4u64, 5u64]; // same H1 group (group 0 spans lines 0..16)
    for &line in &victims {
        sharded.inject_fault(line, 100);
        sharded.inject_fault(line, 200);
    }
    victims
}

#[test]
fn shard_local_scrub_cannot_resolve_the_pair() {
    let sharded = populated(2);
    let victims = inject_h1_defeating_pair(&sharded);
    let owner = sharded.plan().shard_of_line(victims[0]);
    assert_eq!(owner, sharded.plan().shard_of_line(victims[1]));

    // The owning shard alone — full H1 ladder, no coordinator.
    let (report, leftover) = sharded.scrub_shard_local(owner, &victims);
    assert_eq!(
        leftover,
        vec![4, 5],
        "the H1-defeating pair must survive shard-local recovery"
    );
    assert_eq!(report.hash2_repairs, 0, "no H2 without the coordinator");

    // Cross-shard escalation resolves exactly what the shard could not.
    let escalation = sharded.escalate(&leftover);
    assert!(escalation.fully_repaired(), "{escalation:?}");
    assert!(escalation.hash2_repairs >= 1, "{escalation:?}");
    for &line in &victims {
        assert_eq!(sharded.read(line).unwrap(), golden(line));
    }
}

#[test]
fn h2_groups_cross_shards_by_construction() {
    // Round-robin H1-group sharding guarantees every H2 group has members
    // on ≥ 2 shards whenever there are ≥ 2 shards: consecutive H1 groups
    // land on different shards, and H2's skewed hash mixes lines of
    // consecutive H1 groups into each of its groups.
    for n_shards in [2usize, 4, 8] {
        let sharded = populated(n_shards);
        let plan = sharded.plan();
        let hashes =
            sudoku_core::SkewedHashes::from_config(sharded.config()).expect("valid config");
        let groups = hashes.n_groups();
        let mut crossing = 0u64;
        for g in 0..groups {
            let owners: std::collections::BTreeSet<usize> = hashes
                .members(HashDim::H2, g)
                .map(|line| plan.shard_of_line(line))
                .collect();
            if owners.len() >= 2 {
                crossing += 1;
            }
        }
        assert_eq!(
            crossing, groups,
            "every H2 group must cross shards at n_shards={n_shards}"
        );
    }
}

#[test]
fn demand_read_triggers_cross_shard_recovery() {
    let sharded = populated(4);
    let victims = inject_h1_defeating_pair(&sharded);
    // A plain demand read of a victim escalates internally and succeeds.
    assert_eq!(sharded.read(victims[0]).unwrap(), golden(victims[0]));
    assert!(
        sharded.coordinator_stats().hash2_repairs >= 1
            || sharded.coordinator_stats().raid4_repairs >= 1,
        "recovery must have run on the coordinator: {:?}",
        sharded.coordinator_stats()
    );
    // The sibling victim was healed by the same group pass.
    assert_eq!(sharded.read(victims[1]).unwrap(), golden(victims[1]));
}
