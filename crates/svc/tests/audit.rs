//! End-to-end soak of the reliability audit plane: a real service with
//! the watchdog, alert log, and scrub-deadline tracker running against
//! live traffic, plus the HTTP surface that exposes them. The tests
//! inject the failures the watchdog exists for — a stalled scrub daemon,
//! a daemon panic — and assert the alerts arrive through `/alerts.json`
//! within operator-visible time, that `/metrics` stays a valid
//! Prometheus exposition throughout (validated by the `promtext`
//! parser, not substring grep), and that the exporter answers malformed
//! clients with errors instead of hangups.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};
use sudoku_codes::LineData;
use sudoku_svc::{promtext, AuditConfig, Service, ServiceConfig, TelemetryConfig};

fn audit_service(lines: u64, seed: u64, alerts_jsonl: Option<&std::path::Path>) -> Service {
    let mut config = ServiceConfig::small(lines, 4, 1e-4, seed);
    config.scrub_every = Some(Duration::from_millis(1));
    config.telemetry = Some(TelemetryConfig {
        sample_every: Duration::from_millis(20),
        flight_recorder_cap: 64,
        jsonl_path: None,
        port: Some(0), // ephemeral: tests never collide
    });
    config.audit = AuditConfig {
        alerts_jsonl: alerts_jsonl.map(Into::into),
        ..AuditConfig::default()
    };
    Service::start(config).expect("service with audit plane starts")
}

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to exporter");
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Sends raw bytes and returns the full response text — for clients that
/// are deliberately *not* speaking HTTP. Half-closes the write side so
/// the server sees EOF instead of waiting out its IO timeout.
fn http_raw(addr: SocketAddr, request: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to exporter");
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    stream.write_all(request).unwrap();
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response
}

fn data_with(bit: usize) -> LineData {
    let mut d = LineData::zero();
    d.set_bit(bit % 512, true);
    d
}

/// Polls `/alerts.json` until the named class appears, returning how long
/// that took.
fn wait_for_alert(addr: SocketAddr, class: &str, budget: Duration) -> Duration {
    let needle = format!("\"class\":\"{class}\"");
    let start = Instant::now();
    loop {
        let (status, body) = http_get(addr, "/alerts.json");
        assert_eq!(status, 200);
        if body.contains(&needle) {
            return start.elapsed();
        }
        assert!(
            start.elapsed() < budget,
            "alert {class} not raised within {budget:?}; stream: {body}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn metrics_stay_a_valid_prometheus_exposition_with_audit_families() {
    let service = audit_service(1024, 19, None);
    let addr = service.telemetry_addr().expect("exporter is on");
    let handle = service.handle();
    for line in 0..256u64 {
        handle.write(line, &data_with(line as usize)).unwrap();
        assert_eq!(handle.read(line).unwrap(), data_with(line as usize));
    }
    // Let at least one scrub tick land so the deadline tracker has
    // achieved-interval observations to export.
    std::thread::sleep(Duration::from_millis(20));

    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    let parsed = promtext::parse(&metrics)
        .unwrap_or_else(|e| panic!("/metrics is not valid Prometheus text: {e}\n{metrics}"));
    // Every declared histogram family satisfies the invariants Prometheus
    // would enforce at scrape time — including the new audit-plane one.
    parsed
        .check_histograms()
        .unwrap_or_else(|e| panic!("histogram invariant violated: {e}"));
    assert!(
        parsed
            .histogram_families()
            .contains(&"sudoku_achieved_scrub_interval_ns"),
        "audit histogram family declared: {:?}",
        parsed.histogram_families()
    );
    for family in [
        "sudoku_scrub_deadline_misses_total",
        "sudoku_observed_ber",
        "sudoku_error_budget_burn_fast",
        "sudoku_error_budget_burn_slow",
        "sudoku_alerts_critical_total",
    ] {
        assert!(
            parsed.value(family).is_some(),
            "{family} sample present and unique"
        );
    }
    assert_eq!(
        parsed.values("sudoku_scrub_staleness_ns").len(),
        4,
        "one staleness gauge per shard"
    );
    let report = service.shutdown();
    assert_eq!(report.reads, 256);
}

#[test]
fn daemon_stall_raises_stuck_and_deadline_alerts_and_degrades_healthz_body() {
    let dir = std::env::temp_dir().join(format!("sudoku-audit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let jsonl = dir.join("alerts.jsonl");
    let service = audit_service(2048, 23, Some(&jsonl));
    let addr = service.telemetry_addr().expect("exporter is on");
    let handle = service.handle();
    for line in 0..64u64 {
        handle.write(line, &data_with(line as usize)).unwrap();
    }

    // Stall the daemon well past both the stuck budget (8 ticks = 8 ms)
    // and the 20 ms scrub deadline: alive but not scrubbing.
    service.inject_daemon_stall(Duration::from_millis(100));
    let stuck = wait_for_alert(addr, "daemon_stuck", Duration::from_secs(5));
    let miss = wait_for_alert(addr, "deadline_miss", Duration::from_secs(5));
    println!("daemon_stuck after {stuck:?}, deadline_miss after {miss:?}");

    // Soft degradation: /healthz stays 200 (nothing is quarantined) but
    // the body names the watchdog's reasons.
    let (status, health) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "watchdog conditions never 503: {health}");
    assert!(health.contains("\"degraded_reasons\""), "{health}");

    // The alert stream tails: everything after the last seq is empty.
    let (_, body) = http_get(addr, "/alerts.json");
    let total: u64 = {
        let at = body.find("\"total\":").expect("total field") + 8;
        body[at..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap()
    };
    assert!(total >= 2, "at least the two awaited alerts: {body}");
    let (status, tail) = http_get(addr, &format!("/alerts.json?after={total}"));
    assert_eq!(status, 200);
    assert!(tail.contains("\"alerts\":[]"), "tail past the end: {tail}");

    // Let the stall run out so the daemon re-sweeps the now-stale
    // packets: the achieved-interval tracker counts those late sweeps as
    // deadline misses (the alert above was staleness-based and fired
    // mid-stall; the counter increments when the sweep lands).
    std::thread::sleep(Duration::from_millis(200));

    // Kill the daemon outright: the watchdog notices the dead thread and
    // escalates within an operator-visible budget.
    service.inject_daemon_panic();
    let dead = wait_for_alert(addr, "daemon_dead", Duration::from_secs(10));
    println!("daemon_dead after {dead:?}");

    let report = service.shutdown();
    assert!(report.alerts >= 3, "alerts counted in the report");
    assert!(report.critical_alerts >= 1, "deadline misses are critical");
    assert!(report.scrub_deadline_misses >= 1);

    // The JSONL sink persisted the same stream the endpoint served.
    let sink = std::fs::read_to_string(&jsonl).unwrap();
    assert!(sink.contains("\"class\":\"daemon_stuck\""), "{sink}");
    assert!(sink.contains("\"class\":\"daemon_dead\""), "{sink}");
    assert!(
        sink.lines().all(|l| l.starts_with('{') && l.ends_with('}')),
        "sink lines are JSON objects"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exporter_answers_bad_clients_with_errors_not_hangups() {
    let service = audit_service(512, 29, None);
    let addr = service.telemetry_addr().expect("exporter is on");

    let resp = http_raw(addr, b"POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 405"), "non-GET method: {resp}");
    let resp = http_raw(addr, b"not an http request at all");
    assert!(resp.starts_with("HTTP/1.1 400"), "garbage: {resp}");
    let resp = http_raw(addr, b"GET /metrics");
    assert!(resp.starts_with("HTTP/1.1 400"), "no HTTP version: {resp}");
    let (status, _) = http_get(addr, "/nope");
    assert_eq!(status, 404);

    // And the real endpoints still work after the abuse.
    let (status, _) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    service.shutdown();
}

#[test]
fn traces_endpoint_links_live_requests_to_exemplars() {
    let service = audit_service(1024, 31, None);
    let addr = service.telemetry_addr().expect("exporter is on");
    let handle = service.handle();
    // Enough requests that the 1-in-64 sampler must fire many times.
    for line in 0..1024u64 {
        handle.write(line, &data_with(line as usize)).unwrap();
        let _ = handle.read(line).unwrap();
    }
    let (status, body) = http_get(addr, "/traces.json");
    assert_eq!(status, 200);
    assert!(body.contains("\"traces_issued\":"), "{body}");
    assert!(body.contains("\"traces\":["), "{body}");
    assert!(
        body.contains("\"path\":") && body.contains("\"outcome\":"),
        "structured spans serialize path and outcome: {body}"
    );
    assert!(
        body.contains("\"read_exemplars\":[{"),
        "read latency buckets carry exemplar trace IDs: {body}"
    );
    service.shutdown();
}
