//! Cross-validation: the analytic reliability model against Monte-Carlo
//! campaigns driving the real engines, at scales where both are computable.

use sudoku_sttram::core::Scheme;
use sudoku_sttram::fault::ScrubSchedule;
use sudoku_sttram::reliability::analytic::{x_cache_fail, Params};
use sudoku_sttram::reliability::montecarlo::{
    run_group_campaign, run_interval_campaign, GroupScenario, McConfig,
};

/// SuDoku-X DUE rate: analytic binomial model vs measured, elevated BER on
/// a small cache so hundreds of events land in seconds.
#[test]
fn x_due_rate_matches_analytic_model() {
    let lines = 1u64 << 14;
    let group = 128u32;
    let ber = 1e-4;
    let cfg = McConfig {
        scheme: Scheme::X,
        lines,
        group,
        ber,
        trials: 600,
        seed: 31,
        threads: 0,
        scrub: ScrubSchedule::paper_default(),
    };
    let summary = run_interval_campaign(&cfg);
    let params = Params {
        lines,
        group,
        ber,
        ..Params::paper_default()
    };
    let analytic = x_cache_fail(&params);
    let measured = summary.due_rate();
    assert!(
        measured > 0.02,
        "test premise: events must occur (got {measured})"
    );
    // Agreement within a factor of 1.6 at 600 trials.
    let ratio = measured / analytic;
    assert!(
        (0.6..1.6).contains(&ratio),
        "measured {measured:.4} vs analytic {analytic:.4} (ratio {ratio:.2})"
    );
}

/// The (2,2) SDR failure mode is exactly full overlap: the measured success
/// at modest trial counts must be ≥ 1 − 10× the analytic overlap chance.
#[test]
fn sdr_two_by_two_failure_is_overlap_rare() {
    let scenario = GroupScenario::two_by_two(Scheme::Y, 128);
    let s = run_group_campaign(&scenario, 4000, 5, 0);
    // Analytic overlap probability: 2/(n(n-1)) ≈ 6.5e-6.
    assert!(s.success_rate() > 0.999, "{s:?}");
    assert_eq!(s.sdc, 0, "SDR must never silently corrupt");
}

/// Fault statistics: the injector's plan matches the binomial expectations
/// the analytic model is built on.
#[test]
fn injected_fault_statistics_match_model() {
    let cfg = McConfig {
        scheme: Scheme::Y,
        lines: 1 << 16,
        group: 256,
        ber: 5.3e-6,
        trials: 200,
        seed: 77,
        threads: 0,
        scrub: ScrubSchedule::paper_default(),
    };
    let s = run_interval_campaign(&cfg);
    let bits_per_interval = s.faulty_bits as f64 / s.trials as f64;
    let expect = (1u64 << 16) as f64 * 553.0 * 5.3e-6;
    assert!(
        (bits_per_interval / expect - 1.0).abs() < 0.05,
        "measured {bits_per_interval:.1} vs expected {expect:.1}"
    );
}

/// Y and Z never do worse than X on the same seeds.
#[test]
fn stronger_schemes_never_lose_to_weaker_on_same_faults() {
    let base = McConfig {
        scheme: Scheme::X,
        lines: 1 << 13,
        group: 64,
        ber: 2e-4,
        trials: 150,
        seed: 11,
        threads: 0,
        scrub: ScrubSchedule::paper_default(),
    };
    let x = run_interval_campaign(&base);
    let y = run_interval_campaign(&McConfig {
        scheme: Scheme::Y,
        ..base
    });
    let z = run_interval_campaign(&McConfig {
        scheme: Scheme::Z,
        ..base
    });
    assert!(x.due_intervals >= y.due_intervals);
    assert!(y.due_intervals >= z.due_intervals);
    assert!(x.due_intervals > 0, "premise: X must fail sometimes here");
}
