//! The paper's worked examples (Figures 2, 3, 4, 6) replayed literally on
//! the real implementation through the workspace facade.

use sudoku_sttram::codes::{group_parity, LineCodec, LineData};
use sudoku_sttram::core::{HashDim, Scheme, SkewedHashes, SudokuCache, SudokuConfig};

fn lettered(i: u64) -> LineData {
    // Distinct, recognizable contents for lines "A".."P".
    let mut d = LineData::zero();
    for b in 0..8 {
        d.set_bit(((i + 1) as usize * (b + 3) * 17) % 512, true);
    }
    d
}

/// Figure 2: a 16-line cache, 4-line RAID-Groups; line B suffers a 6-bit
/// error and is reconstructed from A, C, D and the parity line.
#[test]
fn figure2_raid4_reconstruction() {
    let mut cache =
        SudokuCache::new(SudokuConfig::small(Scheme::X, 16, 4)).expect("figure 2 geometry");
    for i in 0..16 {
        cache.write(i, &lettered(i));
    }
    let b = 1u64; // "line B"
    for bit in [3, 97, 164, 230, 310, 500] {
        cache.inject_fault(b, bit);
    }
    assert_eq!(cache.read(b).expect("repaired"), lettered(b));
    assert_eq!(cache.stats().raid4_repairs, 1);
}

/// Figure 3(a)/(b)/(c): SDR on two double-fault lines with zero, one, and
/// two overlapping fault positions.
#[test]
fn figure3_sdr_overlap_cases() {
    let run_case = |faults1: [usize; 2], faults2: [usize; 2]| -> usize {
        let mut cache =
            SudokuCache::new(SudokuConfig::small(Scheme::Y, 16, 4)).expect("figure 3 geometry");
        for i in 0..16 {
            cache.write(i, &lettered(i));
        }
        for f in faults1 {
            cache.inject_fault(0, f);
        }
        for f in faults2 {
            cache.inject_fault(1, f);
        }
        cache.scrub().unresolved.len()
    };
    // (a) no overlap: four mismatch positions, fully repaired.
    assert_eq!(run_case([10, 20], [30, 40]), 0);
    // (b) one overlap: two mismatches, still repaired.
    assert_eq!(run_case([10, 20], [10, 40]), 0);
    // (c) both overlap: zero mismatches, SuDoku-Y must declare DUE.
    assert_eq!(run_case([10, 20], [10, 20]), 2);
}

/// Figure 4: a 3-bit-fault line paired with a 2-bit-fault line — SDR fixes
/// the 2-bit line, RAID-4 then recovers the 3-bit line.
#[test]
fn figure4_three_plus_two_fault_pair() {
    let mut cache =
        SudokuCache::new(SudokuConfig::small(Scheme::Y, 16, 4)).expect("figure 4 geometry");
    for i in 0..16 {
        cache.write(i, &lettered(i));
    }
    for bit in [11, 22, 33] {
        cache.inject_fault(2, bit);
    }
    for bit in [44, 55] {
        cache.inject_fault(3, bit);
    }
    let report = cache.scrub();
    assert!(report.fully_repaired(), "{report:?}");
    assert_eq!(cache.read(2).expect("ok"), lettered(2));
    assert_eq!(cache.read(3).expect("ok"), lettered(3));
}

/// Figure 6: lines B and D with 3 faults each share a Hash-1 group but map
/// to different Hash-2 groups (B,F,J,N and D,H,L,P), where each is the
/// lone casualty and recovers.
#[test]
fn figure6_skewed_hash_recovery() {
    let hashes = SkewedHashes::new(16, 4).expect("figure 6 geometry");
    let b = 1u64;
    let d = 3u64;
    assert_eq!(
        hashes.group_of(HashDim::H1, b),
        hashes.group_of(HashDim::H1, d),
        "B and D share a Hash-1 group"
    );
    assert_ne!(
        hashes.group_of(HashDim::H2, b),
        hashes.group_of(HashDim::H2, d),
        "…but not a Hash-2 group"
    );
    assert_eq!(
        hashes
            .members(HashDim::H2, hashes.group_of(HashDim::H2, b))
            .collect::<Vec<_>>(),
        vec![1, 5, 9, 13] // B, F, J, N
    );

    let mut cache =
        SudokuCache::new(SudokuConfig::small(Scheme::Z, 16, 4)).expect("figure 6 geometry");
    for i in 0..16 {
        cache.write(i, &lettered(i));
    }
    for bit in [10, 110, 210] {
        cache.inject_fault(b, bit);
    }
    for bit in [20, 120, 220] {
        cache.inject_fault(d, bit);
    }
    let report = cache.scrub();
    assert!(report.fully_repaired(), "{report:?}");
    assert!(report.hash2_repairs >= 1);
    assert_eq!(cache.read(b).expect("ok"), lettered(b));
    assert_eq!(cache.read(d).expect("ok"), lettered(d));
}

/// Figure 1's organization invariant: the PLT holds the XOR of every
/// group's stored lines at all times, across writes.
#[test]
fn figure1_plt_invariant() {
    let mut cache =
        SudokuCache::new(SudokuConfig::small(Scheme::X, 16, 4)).expect("figure 1 geometry");
    for i in 0..16 {
        cache.write(i, &lettered(i));
    }
    // Overwrite some lines, then verify the parity of group 0 by hand.
    cache.write(2, &lettered(9));
    cache.write(0, &LineData::zero());
    let codec = LineCodec::shared();
    let members: Vec<_> = (0..4).map(|i| cache.stored_line(i)).collect();
    let parity = group_parity(members.iter());
    assert!(
        codec.validate(&parity),
        "XOR of valid codewords stays valid"
    );
    // Reconstruct member 2 from the others via the cache's own machinery:
    // inject an uncorrectable burst and let RAID-4 use the PLT.
    for bit in [5, 6, 7, 8] {
        cache.inject_fault(2, bit);
    }
    assert_eq!(cache.read(2).expect("ok"), lettered(9));
}
