//! The same fault patterns thrown at SuDoku and at every baseline scheme:
//! the qualitative claims of Tables II and XI, verified functionally.

use sudoku_sttram::codes::{BitBuf, LineData};
use sudoku_sttram::core::baselines::{
    BaselineOutcome, CppcCache, EccOnlyCache, HiEccCache, Raid6Cache,
};
use sudoku_sttram::core::{Scheme, SudokuCache, SudokuConfig};

/// Pattern A: one line with six faults. ECC-6 and SuDoku both survive;
/// ECC-5 does not.
#[test]
fn six_fault_line_needs_ecc6_or_sudoku() {
    let positions = [3usize, 77, 150, 260, 390, 480];

    let mut ecc5 = EccOnlyCache::new(5, 8);
    for &p in &positions {
        ecc5.inject_fault(0, p);
    }
    assert_ne!(ecc5.scrub_line(0), BaselineOutcome::Clean);
    assert_ne!(
        ecc5.stored_data(0),
        &BitBuf::zeros(512),
        "ECC-5 cannot restore a 6-fault line"
    );

    let mut ecc6 = EccOnlyCache::new(6, 8);
    for &p in &positions {
        ecc6.inject_fault(0, p);
    }
    assert_eq!(ecc6.scrub_line(0), BaselineOutcome::Corrected);
    assert!(ecc6.stored_data(0).is_zero());

    let mut sudoku =
        SudokuCache::new(SudokuConfig::small(Scheme::X, 64, 16)).expect("valid config");
    for &p in &positions {
        sudoku.inject_fault(0, p);
    }
    assert_eq!(sudoku.read(0).expect("repaired"), LineData::zero());
}

/// Pattern B: two multi-bit lines in different groups. CPPC (one global
/// parity) fails; SuDoku fixes both via per-group RAID-4.
#[test]
fn cppc_global_parity_vs_sudoku_groups() {
    // Two double-fault lines in *different* RAID-Groups of the same cache.
    const FAULTS: &[(u64, usize)] = &[(3, 1), (3, 2), (40, 5), (40, 6)];

    let mut cppc = CppcCache::new(64);
    for &(l, b) in FAULTS {
        cppc.inject_fault(l, b);
    }
    assert_eq!(cppc.scrub(), vec![3, 40], "CPPC cannot fix two casualties");

    let mut sudoku =
        SudokuCache::new(SudokuConfig::small(Scheme::X, 64, 16)).expect("valid config");
    for &(l, b) in FAULTS {
        sudoku.inject_fault(l, b);
    }
    let report = sudoku.scrub();
    assert!(report.fully_repaired(), "{report:?}");
}

/// Pattern C: two fully-overlapping double-fault lines in one group.
/// RAID-6 repairs them (two erasures); SuDoku-Y cannot (no mismatches) but
/// SuDoku-Z can (different Hash-2 groups) — the §VIII-A trade-off.
#[test]
fn raid6_vs_sudoku_y_vs_z_on_overlapping_pairs() {
    const FAULTS: &[(u64, usize)] = &[(1, 100), (2, 100), (1, 200), (2, 200)];

    let mut raid6 = Raid6Cache::new(256, 16).expect("valid config");
    for &(l, b) in FAULTS {
        raid6.inject_fault(l, b);
    }
    assert!(raid6.scrub().is_empty(), "RAID-6 handles two erasures");

    let mut y = SudokuCache::new(SudokuConfig::small(Scheme::Y, 256, 16)).expect("valid config");
    for &(l, b) in FAULTS {
        y.inject_fault(l, b);
    }
    assert_eq!(y.scrub().unresolved.len(), 2, "Y is blind to full overlap");

    let mut z = SudokuCache::new(SudokuConfig::small(Scheme::Z, 256, 16)).expect("valid config");
    for &(l, b) in FAULTS {
        z.inject_fault(l, b);
    }
    assert!(z.scrub().fully_repaired(), "Z recovers through Hash-2");
}

/// Pattern D: three multi-bit lines in one group defeat RAID-6 but not
/// SuDoku-Z — why SuDoku beats RAID-6 in Table XI.
#[test]
fn three_casualties_raid6_fails_sudoku_z_survives() {
    const FAULTS: &[(u64, usize)] = &[(0, 10), (0, 20), (1, 30), (1, 40), (2, 50), (2, 60)];

    let mut raid6 = Raid6Cache::new(256, 16).expect("valid config");
    for &(l, b) in FAULTS {
        raid6.inject_fault(l, b);
    }
    assert_eq!(raid6.scrub().len(), 3);

    let mut z = SudokuCache::new(SudokuConfig::small(Scheme::Z, 256, 16)).expect("valid config");
    for &(l, b) in FAULTS {
        z.inject_fault(l, b);
    }
    assert!(z.scrub().fully_repaired());
}

/// Pattern E: Hi-ECC's weakness — seven faults scattered over one 1-KB
/// region kill it, while under SuDoku those same faults land in separate
/// 64-B lines and are all locally correctable.
#[test]
fn hi_ecc_region_vs_sudoku_lines() {
    // Seven faults, one per 1183-bit stride: same 8-KB region.
    let bits: Vec<usize> = (0..7).map(|k| k * 1183 + 11).collect();

    let mut hiecc = HiEccCache::new(4);
    for &b in &bits {
        hiecc.inject_fault(0, b);
    }
    assert_ne!(hiecc.scrub_region(0), BaselineOutcome::Clean);
    assert_ne!(
        hiecc.stored_data(0),
        &BitBuf::zeros(sudoku_sttram::core::baselines::HI_ECC_REGION_BITS),
        "7 faults exceed t=6 over the region"
    );

    let mut sudoku =
        SudokuCache::new(SudokuConfig::small(Scheme::X, 128, 16)).expect("valid config");
    for &b in &bits {
        let line = (b / 512) as u64;
        sudoku.inject_fault(line, b % 512);
    }
    let report = sudoku.scrub();
    assert!(report.fully_repaired(), "one fault per line is ECC-1 food");
    assert_eq!(report.ecc1_repairs, 7);
}
