//! End-to-end pipeline tests: thermal model → fault injection → SuDoku
//! cache recovery → golden comparison, across the whole workspace facade.

use sudoku_sttram::codes::LineData;
use sudoku_sttram::core::{Scheme, SudokuCache, SudokuConfig};
use sudoku_sttram::fault::{FaultInjector, ScrubSchedule, ThermalModel};

fn golden(i: u64) -> LineData {
    let mut d = LineData::zero();
    d.set_bit((i as usize * 29) % 512, true);
    d.set_bit((i as usize * 173 + 7) % 512, true);
    d
}

fn populated(scheme: Scheme, lines: u64, group: u32) -> SudokuCache {
    let mut cache = SudokuCache::new(SudokuConfig::small(scheme, lines, group))
        .expect("valid test configuration");
    for i in 0..lines {
        cache.write(i, &golden(i));
    }
    cache
}

/// Run many thermal-model-driven intervals over a small cache; SuDoku-Z
/// must repair everything the model throws at it at realistic (scaled)
/// rates, with zero silent corruption.
#[test]
fn thermal_driven_intervals_fully_recover_under_z() {
    let lines = 1024u64;
    let scrub = ScrubSchedule::paper_default();
    // A deliberately weak device so the small cache actually sees faults.
    let thermal = ThermalModel::new(28.0, 0.10);
    let ber = thermal.ber(scrub.interval_s());
    assert!(ber > 1e-6, "test premise: non-trivial BER, got {ber}");
    let mut cache = populated(Scheme::Z, lines, 32);
    let mut injector = FaultInjector::new(ber, 99);
    let mut total_faults = 0u64;
    for _ in 0..50 {
        let plan = injector.cache_plan(lines);
        let mut hints = Vec::new();
        for lf in &plan {
            for _ in 0..lf.faults {
                // inject_exactly equivalent through the cache API
            }
            hints.push(lf.line);
        }
        for lf in &plan {
            let mut line = cache.stored_line(lf.line);
            let before = line;
            let mut injected = 0;
            let mut bit = (lf.line as usize * 97) % 553;
            while injected < lf.faults {
                line.flip_bit(bit);
                bit = (bit + 211) % 553;
                injected += 1;
            }
            for b in line.diff_positions(&before) {
                cache.inject_fault(lf.line, b);
            }
            total_faults += lf.faults as u64;
        }
        let report = cache.scrub_lines(&hints);
        assert!(report.fully_repaired(), "{report:?}");
    }
    assert!(
        total_faults > 20,
        "the campaign must actually inject faults"
    );
    for i in 0..lines {
        assert_eq!(cache.read(i).expect("readable"), golden(i), "line {i}");
    }
}

/// The recovery ladder in one place: identical fault patterns, increasing
/// scheme strength, strictly fewer unresolved lines.
#[test]
fn scheme_ladder_on_identical_fault_pattern() {
    let inject = |cache: &mut SudokuCache| {
        // Two double-fault lines in one group (Y-recoverable) plus two
        // triple-fault lines in another group (Z-recoverable).
        cache.inject_fault(0, 5);
        cache.inject_fault(0, 6);
        cache.inject_fault(1, 7);
        cache.inject_fault(1, 8);
        for bit in [10, 20, 30] {
            cache.inject_fault(64, bit);
        }
        for bit in [11, 21, 31] {
            cache.inject_fault(65, bit);
        }
    };
    let mut unresolved = Vec::new();
    for scheme in [Scheme::X, Scheme::Y, Scheme::Z] {
        let mut cache = populated(scheme, 1024, 32);
        inject(&mut cache);
        let report = cache.scrub();
        unresolved.push(report.unresolved.len());
    }
    assert_eq!(
        unresolved,
        vec![4, 2, 0],
        "X fails all, Y fixes the pairs, Z fixes everything"
    );
}

/// Writes intermixed with faults and scrubs never corrupt the parity
/// invariant: after any sequence, every line reads back as last written.
#[test]
fn interleaved_writes_faults_and_scrubs_preserve_all_data() {
    let lines = 256u64;
    let mut cache = populated(Scheme::Z, lines, 16);
    let mut expected: Vec<LineData> = (0..lines).map(golden).collect();
    for round in 0..20u64 {
        // Overwrite a few lines.
        for k in 0..5u64 {
            let idx = (round * 31 + k * 7) % lines;
            let mut d = LineData::zero();
            d.set_bit(((round * 97 + k) % 512) as usize, true);
            cache.write(idx, &d);
            expected[idx as usize] = d;
        }
        // Sprinkle faults, including multi-bit bursts.
        let victim = (round * 13) % lines;
        for j in 0..(1 + round % 4) {
            cache.inject_fault(victim, ((round * 41 + j * 101) % 553) as usize);
        }
        // Scrub every couple of rounds.
        if round % 2 == 1 {
            let report = cache.scrub();
            assert!(report.fully_repaired(), "round {round}: {report:?}");
        }
    }
    cache.scrub();
    for i in 0..lines {
        assert_eq!(
            cache.read(i).expect("readable"),
            expected[i as usize],
            "line {i}"
        );
    }
}

/// Reads repair on demand without a scrub pass (paper §III-B).
#[test]
fn demand_reads_alone_recover_multibit_faults() {
    let mut cache = populated(Scheme::Y, 256, 16);
    for bit in [100, 200, 300, 400, 500, 512, 544] {
        cache.inject_fault(42, bit);
    }
    assert_eq!(cache.read(42).expect("recovered"), golden(42));
    assert!(cache.is_line_valid(42));
}

/// The storage-overhead arithmetic of §VII-H holds for the real configs.
#[test]
fn storage_overhead_matches_paper() {
    let z = SudokuConfig::paper_default(Scheme::Z);
    assert_eq!(z.storage_overhead_bits_per_line().round() as u32, 43);
    assert_eq!(z.plt_storage_bytes(), 256 * 1024);
    let ecc6 = sudoku_sttram::codes::line_ecc(6).expect("ECC-6");
    assert_eq!(ecc6.parity_bits(), 60);
    assert!(
        z.storage_overhead_bits_per_line() < 60.0 * 0.75,
        "≥25% cheaper"
    );
}
