//! Integration tests for the features beyond the paper's base design:
//! ECC-2 lines (§VII-G), pair-flip SDR, bursts, persistent faults, the
//! repair-event log, and lifetime campaigns — exercised through the
//! workspace facade.

use sudoku_sttram::codes::{Line2Codec, LineData, ProtectedLine2};
use sudoku_sttram::core::{Mechanism, Outcome, Scheme, SudokuCache, SudokuConfig, VminCache};
use sudoku_sttram::fault::{FaultInjector, ScrubSchedule, StuckBitMap};
use sudoku_sttram::reliability::ecc2::{run_ecc2_campaign, Ecc2Scenario};
use sudoku_sttram::reliability::montecarlo::{run_lifetime_campaign, McConfig};

/// §VII-G end-to-end: the exact fault pattern that forces ECC-1 SuDoku-Y
/// onto its second hash is locally resurrectable with ECC-2 lines.
#[test]
fn ecc2_resurrects_what_ecc1_cannot() {
    // ECC-1 design, single hash: two 3-fault lines → DUE.
    let mut y = SudokuCache::new(SudokuConfig::small(Scheme::Y, 256, 16)).expect("valid");
    for i in 0..256 {
        let mut d = LineData::zero();
        d.set_bit(i as usize % 512, true);
        y.write(i, &d);
    }
    for bit in [10, 20, 30] {
        y.inject_fault(4, bit);
    }
    for bit in [11, 21, 31] {
        y.inject_fault(5, bit);
    }
    assert_eq!(y.scrub().unresolved.len(), 2);

    // ECC-2 harness, same pattern, same single hash: repaired.
    let summary = run_ecc2_campaign(
        &Ecc2Scenario {
            group: 16,
            fault_counts: vec![3, 3],
            max_mismatches: 6,
        },
        300,
        7,
    );
    assert!(summary.success_rate() > 0.99, "{summary:?}");
}

/// The ECC-2 codec composes with RAID parity exactly like ECC-1 (XOR of
/// codewords is a codeword), so PLT machinery would carry over unchanged.
#[test]
fn ecc2_lines_are_raid_compatible() {
    let codec = Line2Codec::shared();
    let mut parity = ProtectedLine2::zero();
    let mut members = Vec::new();
    for i in 0..8u64 {
        let mut d = LineData::zero();
        d.set_bit((i * 61 + 3) as usize % 512, true);
        let line = codec.encode(&d);
        parity.xor_assign(&line);
        members.push(line);
    }
    assert!(codec.validate(&parity));
    // Reconstruct member 5 from parity + the rest.
    let mut rebuilt = parity;
    for (i, m) in members.iter().enumerate() {
        if i != 5 {
            rebuilt.xor_assign(m);
        }
    }
    assert_eq!(rebuilt, members[5]);
}

/// Pair-flip SDR through the public configuration surface.
#[test]
fn pair_sdr_via_config_builder() {
    let config = SudokuConfig::small(Scheme::Y, 256, 16).with_pair_sdr();
    assert!(config.sdr_pair_trials);
    let mut cache = SudokuCache::new(config).expect("valid");
    for i in 0..256 {
        cache.write(i, &LineData::zero());
    }
    for bit in [10, 20, 30] {
        cache.inject_fault(0, bit);
    }
    for bit in [11, 21, 31] {
        cache.inject_fault(1, bit);
    }
    assert!(
        cache.scrub().fully_repaired(),
        "pair trials fix (3,3) on one hash"
    );
}

/// A wide burst in one line plus a stuck cell elsewhere: mixed fault
/// classes recovered together.
#[test]
fn burst_plus_persistent_fault_mixed_recovery() {
    let mut stuck = StuckBitMap::new();
    stuck.insert(40, 99, true);
    let mut cache = VminCache::new(SudokuConfig::small(Scheme::Z, 256, 16), stuck)
        .expect("valid configuration");
    let payload = |i: u64| {
        let mut d = LineData::zero();
        d.set_bit((i * 7) as usize % 512, true);
        d
    };
    for i in 0..256 {
        cache.write(i, &payload(i));
    }
    // The stuck line stays readable through the persistent-fault wrapper…
    assert_eq!(cache.read(40).expect("stuck line readable"), payload(40));
    // …while a 40-bit burst on a plain cache is reconstructed via RAID-4.
    let mut injector = FaultInjector::new(1e-6, 5);
    let mut plain = SudokuCache::new(SudokuConfig::small(Scheme::Z, 256, 16)).expect("valid");
    for i in 0..256 {
        plain.write(i, &payload(i));
    }
    let mut line = plain.stored_line(7);
    let before = line;
    injector.inject_burst(&mut line, 40);
    for b in line.diff_positions(&before) {
        plain.inject_fault(7, b);
    }
    assert_eq!(plain.read(7).expect("burst repaired"), payload(7));
}

/// Event log is visible through the facade and attributes dimensions.
#[test]
fn event_log_through_facade() {
    let mut cache = SudokuCache::new(SudokuConfig::small(Scheme::Z, 256, 16)).expect("valid");
    for i in 0..256 {
        cache.write(i, &LineData::zero());
    }
    for bit in [1, 2, 3] {
        cache.inject_fault(9, bit);
    }
    let _ = cache.read(9);
    let raid4: Vec<_> = cache
        .events()
        .filter(|e| e.mechanism == Mechanism::Raid4 && e.outcome == Outcome::Repaired)
        .collect();
    assert_eq!(raid4.len(), 1);
    assert_eq!(raid4[0].line, 9);
    assert!(raid4[0].hash_dim.is_some());
}

/// Lifetime (consecutive intervals) agrees with the independent-interval
/// view at moderate failure rates.
#[test]
fn lifetime_campaign_consistency() {
    let cfg = McConfig {
        scheme: Scheme::X,
        lines: 1 << 12,
        group: 64,
        ber: 2e-4,
        trials: 0,
        seed: 17,
        threads: 0,
        scrub: ScrubSchedule::paper_default(),
    };
    let (mttf_s, failures) = run_lifetime_campaign(&cfg, 20, 100, 3);
    assert!(failures > 0, "X at this BER must fail within 100 intervals");
    assert!(mttf_s.is_finite() && mttf_s > 0.0);
}
