//! `sudoku` — command-line front end to the SuDoku STTRAM reproduction.
//!
//! ```text
//! sudoku info                          architecture + overhead summary
//! sudoku fit  [--delta 35] [--sigma 0.10] [--interval-ms 20]
//!                                      analytic FIT for every scheme
//! sudoku mc   [--scheme z] [--trials 500] [--ber 5.3e-6] [--lines 1048576]
//!                                      Monte-Carlo interval campaign
//! sudoku sim  [--workload mcf] [--accesses 100000]
//!                                      Figure-8/9 datapoint for one workload
//! sudoku demo                          the recovery ladder, end to end
//! ```

use std::collections::HashMap;
use sudoku_sttram::codes::LineData;
use sudoku_sttram::core::{Scheme, SudokuCache, SudokuConfig};
use sudoku_sttram::fault::{ScrubSchedule, ThermalModel};
use sudoku_sttram::reliability::analytic::{
    ecc_fit, sdc_fit, x_fit, x_mttf_seconds, y_fit, y_mttf_hours, z_fit_paper_style, Params,
};
use sudoku_sttram::reliability::montecarlo::{run_interval_campaign, McConfig};
use sudoku_sttram::sim::{compare_workload, paper_workloads, RunnerConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let flags = parse_flags(&args[args.len().min(1)..]);
    match cmd {
        "info" => info(),
        "fit" => fit(&flags),
        "mc" => mc(&flags),
        "sim" => sim(&flags),
        "demo" => demo(),
        _ => help(),
    }
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = it
                .peek()
                .filter(|v| !v.starts_with("--"))
                .map(|v| v.to_string())
                .unwrap_or_else(|| "true".to_string());
            if value != "true" {
                it.next();
            }
            out.insert(name.to_string(), value);
        }
    }
    out
}

fn flag<T: std::str::FromStr>(flags: &HashMap<String, String>, name: &str, default: T) -> T {
    flags
        .get(name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn scheme_of(flags: &HashMap<String, String>) -> Scheme {
    match flags.get("scheme").map(String::as_str) {
        Some("x") | Some("X") => Scheme::X,
        Some("y") | Some("Y") => Scheme::Y,
        _ => Scheme::Z,
    }
}

fn help() {
    println!(
        "sudoku — SuDoku STTRAM reproduction (DSN 2019)\n\n\
         usage:\n\
         \x20 sudoku info                                  architecture summary\n\
         \x20 sudoku fit  [--delta 35] [--sigma 0.10] [--interval-ms 20]\n\
         \x20 sudoku mc   [--scheme x|y|z] [--trials 500] [--ber 5.3e-6] [--lines N] [--group 512]\n\
         \x20 sudoku sim  [--workload mcf] [--accesses 100000]\n\
         \x20 sudoku demo                                  recovery-ladder walkthrough\n\n\
         see also: cargo run -p sudoku-bench --bin repro   (every paper table/figure)"
    );
}

fn info() {
    let cfg = SudokuConfig::paper_default(Scheme::Z);
    let params = Params::paper_default();
    println!("SuDoku-Z, the paper's configuration:");
    println!(
        "  cache:     64 MB STTRAM, {} lines of 64 B, 8-way",
        cfg.geometry.lines()
    );
    println!(
        "  per line:  ECC-1 (10 b) + CRC-31 (31 b); groups of {} lines",
        cfg.group_lines
    );
    println!(
        "  PLTs:      2 × {} KB SRAM (skewed hashes over addr[8:0] / addr[17:9])",
        cfg.plt_storage_bytes() / 2048
    );
    println!(
        "  overhead:  {:.1} bits/line (ECC-6 needs 60)",
        cfg.storage_overhead_bits_per_line()
    );
    println!("\nreliability at BER 5.3e-6 / 20 ms scrub:");
    println!(
        "  SuDoku-X  MTTF {:.2} s     | SuDoku-Y  MTTF {:.1} h",
        x_mttf_seconds(&params),
        y_mttf_hours(&params)
    );
    println!(
        "  SuDoku-Z  FIT {:.2e}  | ECC-6  FIT {:.3}  | SDC FIT {:.2e}",
        z_fit_paper_style(&params),
        ecc_fit(&params, 6),
        sdc_fit(&params)
    );
}

fn fit(flags: &HashMap<String, String>) {
    let delta = flag(flags, "delta", 35.0f64);
    let sigma = flag(flags, "sigma", 0.10f64);
    let interval_ms = flag(flags, "interval-ms", 20.0f64);
    let thermal = ThermalModel::new(delta, sigma);
    let interval = interval_ms * 1e-3;
    let ber = thermal.ber(interval);
    let params = Params {
        ber,
        scrub: ScrubSchedule::new(interval),
        ..Params::paper_default()
    };
    println!(
        "∆ = {delta}, σ = {:.0}%, scrub {interval_ms} ms → BER {ber:.3e}",
        sigma * 100.0
    );
    println!("\n{:<16} {:>12}", "scheme", "FIT");
    for t in 1..=6u32 {
        println!("{:<16} {:>12.3e}", format!("ECC-{t}"), ecc_fit(&params, t));
    }
    println!("{:<16} {:>12.3e}", "SuDoku-X", x_fit(&params));
    println!("{:<16} {:>12.3e}", "SuDoku-Y", y_fit(&params));
    println!("{:<16} {:>12.3e}", "SuDoku-Z", z_fit_paper_style(&params));
    println!(
        "{:<16} {:>12.3e}",
        "SuDoku-Z/ECC2",
        z_fit_paper_style(&params.with_line_ecc(2))
    );
}

fn mc(flags: &HashMap<String, String>) {
    let cfg = McConfig {
        scheme: scheme_of(flags),
        lines: flag(flags, "lines", 1u64 << 20),
        group: flag(flags, "group", 512u32),
        ber: flag(flags, "ber", 5.3e-6f64),
        trials: flag(flags, "trials", 500u64),
        seed: flag(flags, "seed", 42u64),
        threads: flag(flags, "threads", 0usize),
        scrub: ScrubSchedule::paper_default(),
    };
    println!(
        "running {} intervals of {} over {} lines at BER {:.2e}…",
        cfg.trials, cfg.scheme, cfg.lines, cfg.ber
    );
    let s = run_interval_campaign(&cfg);
    let (lo, hi) = s.due_rate_ci();
    println!(
        "  faulty bits/interval: {:.1}; multi-bit lines/interval: {:.2}",
        s.faulty_bits as f64 / s.trials as f64,
        s.multibit_lines as f64 / s.trials as f64
    );
    println!(
        "  repairs: raid4 {} | sdr {} | hash2 {}",
        s.raid4_repairs, s.sdr_repairs, s.hash2_repairs
    );
    println!(
        "  DUE: {}/{} intervals (rate {:.3e}, 95% CI {:.2e}–{:.2e}); SDC intervals: {}",
        s.due_intervals,
        s.trials,
        s.due_rate(),
        lo,
        hi,
        s.sdc_intervals
    );
    let mttf = s.mttf_seconds(&cfg.scrub);
    if mttf.is_finite() {
        println!("  measured MTTF: {mttf:.2} s");
    } else {
        println!("  no failures observed — MTTF beyond this campaign's reach");
    }
}

fn sim(flags: &HashMap<String, String>) {
    let name = flags
        .get("workload")
        .cloned()
        .unwrap_or_else(|| "mcf".to_string());
    let accesses = flag(flags, "accesses", 100_000u64);
    let cfg = RunnerConfig::paper_default(accesses, flag(flags, "seed", 42u64));
    let workloads = paper_workloads(cfg.system.cores);
    let Some(w) = workloads.iter().find(|w| w.name == name) else {
        println!(
            "unknown workload {name}; available: {}",
            workloads
                .iter()
                .map(|w| w.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        return;
    };
    let c = compare_workload(&cfg, w);
    println!("{name}: {} LLC accesses/core on 8 cores", accesses);
    println!(
        "  hit rate {:.3}; DRAM row-hit rate {:.3}",
        c.ideal.metrics.hit_rate(),
        c.ideal.metrics.dram_row_hits as f64 / c.ideal.metrics.llc_misses.max(1) as f64
    );
    println!(
        "  SuDoku-Z vs ideal: time ×{:.5}, EDP ×{:.5}",
        c.time_ratio(),
        c.edp_ratio()
    );
    println!(
        "  overhead detail: scrub stalls {:.1} µs, syndrome {:.1} µs, PLT writes {}",
        c.sudoku.metrics.scrub_stall_ns / 1e3,
        c.sudoku.metrics.syndrome_ns / 1e3,
        c.sudoku.metrics.plt_writes
    );
}

fn demo() {
    let config = SudokuConfig::small(Scheme::Z, 256, 16);
    let mut cache = SudokuCache::new(config).expect("demo configuration is valid");
    let payload = |i: u64| {
        let mut d = LineData::zero();
        d.set_bit((i as usize * 37) % 512, true);
        d
    };
    for i in 0..256 {
        cache.write(i, &payload(i));
    }
    println!("256-line SuDoku-Z cache primed. Injecting the ladder:");
    cache.inject_fault(7, 123);
    assert_eq!(cache.read(7).expect("ecc1"), payload(7));
    println!("  1 fault      → ECC-1");
    for bit in [10, 60, 200, 340, 480] {
        cache.inject_fault(20, bit);
    }
    assert_eq!(cache.read(20).expect("raid4"), payload(20));
    println!("  5 faults     → RAID-4");
    for (l, b) in [(32, 11), (32, 22), (33, 33), (33, 44)] {
        cache.inject_fault(l, b);
    }
    assert!(cache.scrub_lines(&[32, 33]).fully_repaired());
    println!("  2×2 faults   → SDR");
    for (l, b) in [(48, 1), (48, 2), (48, 3), (49, 4), (49, 5), (49, 6)] {
        cache.inject_fault(l, b);
    }
    assert!(cache.scrub_lines(&[48, 49]).fully_repaired());
    println!("  2×3 faults   → Hash-2");
    println!("\nstats: {:#?}", cache.stats());
}
