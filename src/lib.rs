//! # sudoku-sttram
//!
//! A full reproduction of **SuDoku: Tolerating High-Rate of Transient
//! Failures for Enabling Scalable STTRAM** (Nair, Asgari, Qureshi —
//! DSN 2019), as a Rust workspace:
//!
//! * [`codes`] — CRC-31, Hamming SEC (ECC-1), GF(2^m)/BCH (ECC-2…6,
//!   Hi-ECC), and RAID-4 parity;
//! * [`fault`] — the STTRAM thermal retention-failure model, seeded fault
//!   injection, scrub scheduling, permanent faults;
//! * [`core`] — the SuDoku cache itself: PLTs, skewed hashes, RAID-4,
//!   Sequential Data Resurrection, cross-hash recovery, plus the CPPC /
//!   RAID-6 / Hi-ECC / uniform-ECC baselines;
//! * [`reliability`] — analytic FIT/MTTF models and Monte-Carlo campaigns
//!   over the real engines;
//! * [`sim`] — the trace-driven performance and energy simulator behind
//!   Figures 8 and 9;
//! * [`obs`] — recovery-event telemetry: the escalation-chain event log,
//!   allocation-free histograms, phase spans, and forensic replay;
//! * [`svc`] — the concurrent sharded cache service: Hash-1-sharded
//!   storage behind per-shard worker queues, a background scrub daemon,
//!   cross-shard Hash-2 escalation, and a load generator.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! per-table/figure reproduction record. The `sudoku-bench` crate
//! regenerates every table and figure (`cargo run -p sudoku-bench --bin
//! repro`).
//!
//! # Quick start
//!
//! ```
//! use sudoku_sttram::core::{Scheme, SudokuCache, SudokuConfig};
//! use sudoku_sttram::codes::LineData;
//!
//! let mut cache = SudokuCache::new(SudokuConfig::small(Scheme::Z, 256, 16))?;
//! let mut data = LineData::zero();
//! data.set_bit(7, true);
//! cache.write(3, &data);
//! for bit in [10, 20, 30] {
//!     cache.inject_fault(3, bit); // a 3-bit transient burst
//! }
//! assert_eq!(cache.read(3)?, data);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use sudoku_codes as codes;
pub use sudoku_core as core;
pub use sudoku_fault as fault;
pub use sudoku_obs as obs;
pub use sudoku_reliability as reliability;
pub use sudoku_sim as sim;
pub use sudoku_svc as svc;
