//! Reliability design-space sweep: thermal stability ∆ × scrub interval,
//! reporting the FIT rate of ECC-6 vs SuDoku-Z for each point — the
//! paper's Tables VIII and X generalized into one map.
//!
//! ```sh
//! cargo run --release --example reliability_sweep
//! ```

use sudoku_sttram::fault::{ScrubSchedule, ThermalModel};
use sudoku_sttram::reliability::analytic::{ecc_fit, z_fit_paper_style, Params};

fn main() {
    let deltas = [33.0, 34.0, 35.0, 36.0, 38.0];
    let intervals = [5e-3, 10e-3, 20e-3, 40e-3];

    println!("FIT of ECC-6 | SuDoku-Z (✓ = meets the 1-FIT target)\n");
    print!("{:>6}", "∆ \\ t");
    for t in intervals {
        print!("{:>24}", format!("{:.0} ms", t * 1e3));
    }
    println!();
    for delta in deltas {
        print!("{delta:>6}");
        for interval in intervals {
            let ber = ThermalModel::new(delta, 0.10).ber(interval);
            let params = Params {
                ber,
                scrub: ScrubSchedule::new(interval),
                ..Params::paper_default()
            };
            let e6 = ecc_fit(&params, 6);
            let z = z_fit_paper_style(&params);
            let mark = |fit: f64| if fit <= 1.0 { "✓" } else { "✗" };
            print!(
                "{:>24}",
                format!("{:.1e}{} | {:.1e}{}", e6, mark(e6), z, mark(z))
            );
        }
        println!();
    }

    println!(
        "\nreading the map: at the paper's operating point (∆=35, 20 ms) both meet\n\
         the target, but SuDoku-Z keeps meeting it at 40 ms and at ∆=34 where\n\
         ECC-6 already fails — the scaling headroom the paper claims (§VII-E/G)."
    );
}
