//! A paper-scale fault-injection campaign: simulate hundreds of 20 ms
//! scrub intervals of a full 64 MB STTRAM cache (2^20 lines) at the
//! paper's BER, driving the real SuDoku engines, and compare the measured
//! failure statistics against the analytic model and the paper.
//!
//! ```sh
//! cargo run --release --example fault_injection_campaign [-- trials]
//! ```

use sudoku_sttram::core::Scheme;
use sudoku_sttram::reliability::analytic::{x_cache_fail, x_mttf_seconds, Params};
use sudoku_sttram::reliability::montecarlo::{run_interval_campaign, McConfig};

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(500);
    println!("running {trials} full-scale intervals per scheme (64 MB, BER 5.3e-6)…\n");

    for scheme in [Scheme::X, Scheme::Y, Scheme::Z] {
        let cfg = McConfig::paper_default(scheme, trials, 0xFEED);
        let s = run_interval_campaign(&cfg);
        println!("{scheme}:");
        println!(
            "  faulty bits/interval {:6.0}   multi-bit lines/interval {:.2}",
            s.faulty_bits as f64 / s.trials as f64,
            s.multibit_lines as f64 / s.trials as f64
        );
        println!(
            "  repairs: raid4 {}  sdr {}  hash2 {}",
            s.raid4_repairs, s.sdr_repairs, s.hash2_repairs
        );
        let (lo, hi) = s.due_rate_ci();
        println!(
            "  DUE intervals {}/{} (rate {:.2e}, 95% CI {:.2e}–{:.2e}) — MTTF {:.1} s\n",
            s.due_intervals,
            s.trials,
            s.due_rate(),
            lo,
            hi,
            s.mttf_seconds(&cfg.scrub)
        );
    }

    let params = Params::paper_default();
    println!(
        "analytic SuDoku-X for comparison: DUE/interval {:.2e}, MTTF {:.2} s (paper: 3.71 s)",
        x_cache_fail(&params),
        x_mttf_seconds(&params)
    );
    println!("(Y and Z fail far too rarely to observe here: ~hours and ~10^12 hours MTTF)");
}
