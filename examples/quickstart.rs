//! Quickstart: build a SuDoku-Z cache, hit it with increasingly nasty
//! transient-fault patterns, and watch each level of the recovery ladder
//! (ECC-1 → RAID-4 → SDR → skewed hash) bring the data back.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sudoku_sttram::codes::LineData;
use sudoku_sttram::core::{Scheme, SudokuCache, SudokuConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 256 lines in RAID-Groups of 16 — a scaled-down paper configuration
    // (the real thing is 2^20 lines in groups of 512).
    let config = SudokuConfig::small(Scheme::Z, 256, 16);
    println!(
        "SuDoku-Z cache: {} lines, groups of {}, {:.1} overhead bits/line",
        config.geometry.lines(),
        config.group_lines,
        config.storage_overhead_bits_per_line()
    );
    let mut cache = SudokuCache::new(config)?;

    // Fill it with recognizable data.
    let payload = |i: u64| {
        let mut d = LineData::zero();
        d.set_bit((i as usize * 37) % 512, true);
        d.set_bit((i as usize * 91 + 5) % 512, true);
        d
    };
    for i in 0..256 {
        cache.write(i, &payload(i));
    }

    // Level 1: a single thermal flip — ECC-1 fixes it on read.
    cache.inject_fault(7, 123);
    assert_eq!(cache.read(7)?, payload(7));
    println!(
        "1 fault in line 7        → repaired by ECC-1 ({} so far)",
        cache.stats().ecc1_repairs
    );

    // Level 2: a 5-bit burst — CRC detects, RAID-4 reconstructs from the
    // group parity.
    for bit in [10, 60, 200, 340, 480] {
        cache.inject_fault(20, bit);
    }
    assert_eq!(cache.read(20)?, payload(20));
    println!(
        "5 faults in line 20      → repaired by RAID-4 ({} so far)",
        cache.stats().raid4_repairs
    );

    // Level 3: two lines of one group with two faults each — classic RAID
    // is stuck, Sequential Data Resurrection is not (paper §IV).
    cache.inject_fault(32, 11);
    cache.inject_fault(32, 22);
    cache.inject_fault(33, 33);
    cache.inject_fault(33, 44);
    let report = cache.scrub_lines(&[32, 33]);
    assert!(report.fully_repaired());
    assert_eq!(cache.read(32)?, payload(32));
    assert_eq!(cache.read(33)?, payload(33));
    println!(
        "2×2 faults in lines 32+33 → resurrected by SDR ({} so far)",
        cache.stats().sdr_repairs
    );

    // Level 4: two lines with three faults each — SDR cannot resurrect
    // them, but under Hash-2 they land in different groups (paper §V).
    for bit in [1, 2, 3] {
        cache.inject_fault(48, bit);
    }
    for bit in [4, 5, 6] {
        cache.inject_fault(49, bit);
    }
    let report = cache.scrub_lines(&[48, 49]);
    assert!(report.fully_repaired());
    assert_eq!(cache.read(48)?, payload(48));
    assert_eq!(cache.read(49)?, payload(49));
    println!(
        "2×3 faults in lines 48+49 → recovered through Hash-2 ({} so far)",
        cache.stats().hash2_repairs
    );

    println!("\nall data intact; cache stats: {:#?}", cache.stats());
    Ok(())
}
