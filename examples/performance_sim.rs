//! Performance/energy demo: run a few workloads through the trace-driven
//! simulator and print the Figure 8/9 quantities (execution time and EDP
//! of SuDoku-Z normalized to an idealized error-free cache).
//!
//! ```sh
//! cargo run --release --example performance_sim [-- accesses_per_core]
//! ```

use sudoku_sttram::sim::{compare_workload, geo_mean, paper_workloads, RunnerConfig};

fn main() {
    let accesses: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000);
    let cfg = RunnerConfig::paper_default(accesses, 2026);
    println!(
        "8-core system, 64 MB STTRAM LLC (9/18 ns), {} LLC accesses per core\n",
        accesses
    );
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>11} {:>11}",
        "workload", "hit rate", "time×", "EDP×", "PLT writes", "scrubstall"
    );
    let mut t_ratios = Vec::new();
    let mut e_ratios = Vec::new();
    for w in paper_workloads(cfg.system.cores).iter().take(8) {
        let c = compare_workload(&cfg, w);
        t_ratios.push(c.time_ratio());
        e_ratios.push(c.edp_ratio());
        println!(
            "{:<16} {:>9.3} {:>9.5} {:>9.5} {:>11} {:>9.1}µs",
            c.name,
            c.ideal.metrics.hit_rate(),
            c.time_ratio(),
            c.edp_ratio(),
            c.sudoku.metrics.plt_writes,
            c.sudoku.metrics.scrub_stall_ns / 1e3,
        );
    }
    println!(
        "\ngeomean slowdown {:.3}% (paper: ~0.15%), geomean EDP overhead {:.3}% (paper: ≤0.4%)",
        (geo_mean(t_ratios) - 1.0) * 100.0,
        (geo_mean(e_ratios) - 1.0) * 100.0
    );
}
