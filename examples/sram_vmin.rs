//! SuDoku beyond STTRAM (paper §VI): an SRAM cache operated below V_min,
//! where some cells fail *persistently*. SuDoku tolerates them with plain
//! ECC-1 + CRC-31 + parity groups — no boot-time testing, no fault map —
//! because stuck bits look exactly like very sticky transient faults.
//!
//! ```sh
//! cargo run --release --example sram_vmin
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sudoku_sttram::codes::LineData;
use sudoku_sttram::core::{Scheme, SudokuCache, SudokuConfig};
use sudoku_sttram::fault::StuckBitMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small SRAM array at aggressive voltage: stuck-at BER of 2e-4.
    // (Table IV studies 1e-3; at that density a 4096-line toy cache would
    // see group collisions constantly — see EXPERIMENTS.md.)
    let lines = 4096u64;
    let mut rng = StdRng::seed_from_u64(7);
    let stuck = StuckBitMap::random(&mut rng, lines, 2e-4);
    println!(
        "low-voltage SRAM: {} lines, {} stuck bits across {} lines",
        lines,
        stuck.total_stuck_bits(),
        stuck.faulty_lines()
    );

    let mut cache = SudokuCache::new(SudokuConfig::small(Scheme::Z, lines, 64))?;
    let payload = |i: u64| {
        let mut d = LineData::zero();
        d.set_bit((i as usize * 13) % 512, true);
        d
    };

    // Write everything; after each write the stuck cells reassert.
    let mut hints = Vec::new();
    for i in 0..lines {
        cache.write(i, &payload(i));
        let mut stored = cache.stored_line(i);
        if stuck.apply(i, &mut stored) > 0 {
            // Model: the array cell ignores the written value.
            let diff = stored.diff_positions(&cache.stored_line(i));
            for bit in diff {
                cache.inject_fault(i, bit);
            }
            hints.push(i);
        }
    }

    // One scrub pass repairs the persistent damage like any other fault.
    let report = cache.scrub_lines(&hints);
    println!(
        "scrub: {} ECC-1 repairs, {} RAID-4, {} SDR, {} via Hash-2, {} unresolved",
        report.ecc1_repairs,
        report.raid4_repairs,
        report.sdr_repairs,
        report.hash2_repairs,
        report.unresolved.len()
    );

    // Every line still reads back correctly (reads re-repair whatever the
    // stuck cells re-break).
    let mut correct = 0;
    for i in 0..lines {
        let mut stored = cache.stored_line(i);
        if stuck.apply(i, &mut stored) > 0 {
            for bit in stored.diff_positions(&cache.stored_line(i)) {
                cache.inject_fault(i, bit);
            }
        }
        if cache.read(i)? == payload(i) {
            correct += 1;
        }
    }
    println!("reads correct after re-asserting stuck cells: {correct}/{lines}");
    println!(
        "\nthe same machinery that tolerates STTRAM retention failures handles\n\
         persistent low-voltage SRAM faults with zero additional hardware (§VI)."
    );
    Ok(())
}
