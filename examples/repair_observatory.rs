//! Observability demo: run a small SuDoku-Z cache at an elevated fault
//! rate and reconstruct, from the recovery-event log, which mechanism
//! earned its keep — the per-mechanism histogram behind the paper's
//! "optimize for the common case" argument (§II-E) — plus the escalation
//! chains of the rare lines that needed the exotic machinery.
//!
//! ```sh
//! cargo run --release --example repair_observatory
//! ```

use std::collections::BTreeMap;
use sudoku_sttram::codes::{LineData, TOTAL_BITS};
use sudoku_sttram::core::{Mechanism, Outcome, Recorder, Scheme, SudokuCache, SudokuConfig};
use sudoku_sttram::fault::{choose_distinct, FaultInjector};
use sudoku_sttram::obs::{forensics, Dim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lines = 1u64 << 12;
    let ber = 3e-4; // ~6.8 faults per million bits per interval, scaled up
    let mut cache = SudokuCache::new(SudokuConfig::small(Scheme::Z, lines, 64))?;
    let _ = cache.set_recorder(Recorder::unbounded());
    for i in 0..lines {
        let mut d = LineData::zero();
        d.set_bit((i as usize * 11) % 512, true);
        cache.write(i, &d);
    }

    let mut injector = FaultInjector::new(ber, 2026);
    let intervals = 40;
    for interval in 0..intervals {
        cache.recorder_mut().set_interval(interval);
        let plan = injector.cache_plan(lines);
        let mut hints = Vec::with_capacity(plan.len());
        for lf in &plan {
            for pos in choose_distinct(injector.rng(), TOTAL_BITS as u64, lf.faults as u64) {
                cache.inject_fault(lf.line, pos as usize);
            }
            hints.push(lf.line);
        }
        cache.scrub_lines(&hints);
    }

    let mut histogram: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut hash2 = 0u64;
    for event in cache.events() {
        let name = match (event.mechanism, event.outcome) {
            (Mechanism::Ecc1, Outcome::Repaired) => "ECC-1 (single bit)",
            (Mechanism::EccField, Outcome::Repaired) => "ECC-field regen",
            (Mechanism::CrcDetect, _) => "CRC multi-bit detect",
            (Mechanism::Raid4, Outcome::Repaired) => "RAID-4 reconstruction",
            (Mechanism::Sdr, Outcome::Repaired) => "SDR resurrection",
            (Mechanism::Due, _) => "DUE (unrecovered)",
            _ => continue, // blocked / failed intermediate steps
        };
        *histogram.entry(name).or_default() += 1;
        if event.outcome == Outcome::Repaired && event.hash_dim == Some(Dim::H2) {
            hash2 += 1;
        }
    }

    println!(
        "{} intervals at BER {ber:.0e} over {lines} lines — repair mechanisms:\n",
        intervals
    );
    let total: u64 = histogram.values().sum();
    for (name, count) in &histogram {
        println!(
            "  {name:<24} {count:>6}  ({:>5.2}%)",
            *count as f64 / total as f64 * 100.0
        );
    }
    println!("  of which via Hash-2:     {hash2:>6}");

    // Replay the event log as per-line escalation chains and show the
    // most interesting ones: the lines ECC-1 could not save.
    let events: Vec<_> = cache.events().copied().collect();
    let chains = forensics::chains(&events);
    let exotic: Vec<_> = chains
        .iter()
        .filter(|c| c.events.len() > 1 && c.resolution().is_some())
        .collect();
    println!(
        "\nescalation chains beyond ECC-1 ({} of {}):",
        exotic.len(),
        chains.len()
    );
    for chain in exotic.iter().take(8) {
        println!(
            "  interval {:>2}, line {:>5}: {}",
            chain.interval,
            chain.line,
            chain.signature()
        );
    }
    println!(
        "\nthe shape is the paper's §II-E insight: single-bit ECC-1 repairs\n\
         dominate by orders of magnitude; the exotic machinery exists for\n\
         the rare tail — and the tail is exactly where the MTTF lives."
    );
    Ok(())
}
