//! Offline drop-in subset of the `serde` facade.
//!
//! The workspace derives `Serialize`/`Deserialize` as forward-compatible
//! markers only — no code serializes through serde yet, and the build
//! environment is air-gapped. This shim supplies the trait names and re-exports
//! the no-op derive macros so `use serde::{Serialize, Deserialize}` and
//! `#[derive(Serialize, Deserialize)]` compile unchanged. When a future PR
//! needs real (de)serialization, replace this shim with a vendored serde.

#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
