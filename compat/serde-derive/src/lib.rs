//! No-op `Serialize`/`Deserialize` derive macros.
//!
//! The workspace uses serde derives purely as forward-compatible markers on
//! config/report structs; nothing serializes through them yet, and the build
//! environment is air-gapped so the real `serde_derive` cannot be fetched.
//! These derives accept the same syntax (including `#[serde(...)]` helper
//! attributes) and expand to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
