//! Offline drop-in subset of the `rand` crate API.
//!
//! The build environment for this repository is air-gapped, so the real
//! `rand` crate cannot be fetched. This shim provides the exact surface the
//! workspace uses — [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! the [`Rng`] extension methods `gen`, `gen_range`, `gen_bool` — backed by
//! xoshiro256++ seeded through SplitMix64 (the same seeding scheme
//! `rand_xoshiro` uses).
//!
//! Determinism contract: for a fixed seed the generated stream is stable
//! across platforms and releases of this workspace. The stream differs from
//! upstream `rand`'s ChaCha12-based `StdRng`, which is fine: nothing in the
//! repository depends on the specific stream, only on seeded
//! reproducibility.

#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over a range (integer and float primitives).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                low.wrapping_add(uniform_u64(rng, span) as Self)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as Self;
                }
                low.wrapping_add(uniform_u64(rng, span + 1) as Self)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + (high - low) * unit_f64(rng)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty inclusive range");
        low + (high - low) * (rng.next_u64() as f64 / u64::MAX as f64)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_half_open(rng, low as f64, high as f64) as f32
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_inclusive(rng, low as f64, high as f64) as f32
    }
}

/// Unbiased uniform draw from `0..span` (`span == 0` means the full 2^64).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Widening-multiply rejection (Lemire): unbiased, usually one draw.
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128) * (span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// A uniform double in `[0, 1)` with 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as Self
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// The user-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::{Rng, SeedableRng};
    ///
    /// let mut a = StdRng::seed_from_u64(7);
    /// let mut b = StdRng::seed_from_u64(7);
    /// assert_eq!(a.gen::<f64>(), b.gen::<f64>());
    /// ```
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the 256-bit state
            // (never all-zero: SplitMix64 output over four draws cannot be).
            let mut next = move || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_int_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit");
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(0..=5);
            assert!(v <= 5);
        }
    }

    #[test]
    fn gen_range_float_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    fn unit_f64_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits}");
    }

    #[test]
    fn uniform_u64_unbiased_small_span() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[uniform_u64(&mut rng, 3) as usize] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }
}
