//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The build environment is air-gapped, so the real `criterion` crate cannot
//! be fetched. This shim keeps the workspace's `[[bench]]` targets compiling
//! and producing useful wall-clock numbers: each `bench_function` calibrates
//! an iteration count to a ~100 ms measurement window and reports the median
//! of several samples in ns/iter. It makes no statistical claims beyond that
//! — it exists so `cargo bench` runs offline and kernel regressions are
//! visible, not to replace criterion's analysis.
//!
//! Supported surface: [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], [`criterion_group!`],
//! [`criterion_main!`], and [`black_box`].

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-exported opaque-value helper (criterion's own is equivalent).
pub use std::hint::black_box;

/// Hint for how much per-iteration setup data weighs; accepted for API
/// compatibility. The shim sizes batches purely by measured routine cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is small; large batches are fine.
    SmallInput,
    /// Setup output is large; prefer smaller batches.
    LargeInput,
    /// Setup output is per-iteration sized.
    PerIteration,
}

/// Benchmark driver handed to each registered benchmark function.
pub struct Criterion {
    target_time: Duration,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            target_time: Duration::from_millis(100),
            samples: 5,
        }
    }
}

impl Criterion {
    /// Accepts CLI args for API compatibility (no-op in the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one named benchmark and prints its median timing.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            target_time: self.target_time,
            samples: self.samples,
            result_ns: None,
        };
        f(&mut bencher);
        match bencher.result_ns {
            Some(ns) => println!("bench {name:<40} {:>14} ns/iter", format_ns(ns)),
            None => println!("bench {name:<40} (no measurement)"),
        }
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 100.0 {
        format!("{ns:.0}")
    } else {
        format!("{ns:.2}")
    }
}

/// Times a routine; handed to the closure given to
/// [`Criterion::bench_function`].
pub struct Bencher {
    target_time: Duration,
    samples: usize,
    result_ns: Option<f64>,
}

impl Bencher {
    /// Times `routine`, which is called repeatedly with no per-call setup.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: grow the batch until one batch costs >= target/samples.
        let slice = self.target_time / self.samples as u32;
        let mut n: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= slice || n >= 1 << 40 {
                break;
            }
            n = if elapsed.is_zero() {
                n * 100
            } else {
                // Aim 20% past the slice so the next batch qualifies.
                (n as f64 * 1.2 * slice.as_secs_f64() / elapsed.as_secs_f64()).ceil() as u64
            };
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..n {
                    black_box(routine());
                }
                t.elapsed().as_secs_f64() * 1e9 / n as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = Some(per_iter[per_iter.len() / 2]);
    }

    /// Times `routine` with fresh `setup` output per call; only the routine
    /// is inside the timed region.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let slice = self.target_time / self.samples as u32;
        let mut n: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = t.elapsed();
            if elapsed >= slice || n >= 1 << 24 {
                break;
            }
            n = if elapsed.is_zero() {
                n * 8
            } else {
                ((n as f64 * 1.2 * slice.as_secs_f64() / elapsed.as_secs_f64()).ceil() as u64)
                    .min(n * 8)
            };
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
                let t = Instant::now();
                for input in inputs {
                    black_box(routine(input));
                }
                t.elapsed().as_secs_f64() * 1e9 / n as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = Some(per_iter[per_iter.len() / 2]);
    }
}

/// Bundles benchmark functions into one group runner, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running each group, like criterion's.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion {
            target_time: Duration::from_millis(5),
            samples: 3,
        };
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn iter_batched_consumes_setup_output() {
        let mut c = Criterion {
            target_time: Duration::from_millis(5),
            samples: 3,
        };
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 16],
                |v| v.into_iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }
}
