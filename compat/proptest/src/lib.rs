//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment is air-gapped, so the real `proptest` crate cannot
//! be fetched. This shim supports the surface the workspace's property tests
//! use: the `proptest!` macro, `Strategy` with `prop_map`, `any`, range
//! strategies, tuples, `collection::{vec, btree_set}`, `array::uniform8`,
//! `sample::Index`, `ProptestConfig::with_cases`, `prop_assert*`,
//! `prop_assume!`, and `TestCaseError`.
//!
//! Semantics: each test runs `cases` iterations with per-case deterministic
//! seeds derived from the test's file and name (override the base with
//! `PROPTEST_SEED`). Failures report the case seed for replay; there is no
//! shrinking — the seed in the panic message is the reproduction handle.

use rand::rngs::StdRng;
use rand::Rng;

/// A generator of random values of one type.
///
/// Unlike real proptest there is no value tree or shrinking: a strategy is
/// just a seeded sampler.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps this strategy's output through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: uniform over the whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// A size specification: an exact length or a length range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize {
            if self.lo == self.hi {
                self.lo
            } else {
                rng.gen_range(self.lo..=self.hi)
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with cardinality drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut set = std::collections::BTreeSet::new();
            // Cap attempts so tiny domains cannot hang; proptest would
            // reject such a case, we settle for the max reachable size.
            let mut attempts = 0usize;
            while set.len() < n && attempts < 100 * (n + 1) {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }

    /// Generates ordered sets of `element` values with cardinality in `size`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::{StdRng, Strategy};

    /// Strategy for `[S::Value; 8]`.
    pub struct Uniform8<S>(S);

    impl<S: Strategy> Strategy for Uniform8<S> {
        type Value = [S::Value; 8];
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            std::array::from_fn(|_| self.0.sample(rng))
        }
    }

    /// Generates `[T; 8]` with each element drawn from `element`.
    pub fn uniform8<S: Strategy>(element: S) -> Uniform8<S> {
        Uniform8(element)
    }
}

/// Sampling helpers (`Index`).
pub mod sample {
    use super::Arbitrary;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// An abstract index into a collection whose length is only known at use
    /// time; draw one with `any::<Index>()` and resolve with [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Resolves to a concrete index in `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.0 as u128 * len as u128) >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            Index(rng.gen::<u64>())
        }
    }
}

/// Why a test case did not pass: a genuine failure or a rejected sample.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The sample did not meet a `prop_assume!` precondition.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection (the case is re-drawn, not counted as a failure).
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}

/// Per-block configuration, set with `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Test-runner internals used by the `proptest!` expansion.
pub mod runner {
    use super::{ProptestConfig, TestCaseError};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fnv64(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs `case` until `config.cases` accepted executions pass.
    ///
    /// Case seeds are deterministic per (file, test name, case number);
    /// setting `PROPTEST_SEED` replaces the (file, name) base so a failing
    /// seed printed by a panic can be replayed directly.
    pub fn run<F>(config: ProptestConfig, file: &str, name: &str, mut case: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let base = match std::env::var("PROPTEST_SEED") {
            Ok(v) => v
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {v:?}")),
            Err(_) => fnv64(file) ^ fnv64(name).rotate_left(17),
        };
        let mut accepted = 0u32;
        let mut rejected = 0u64;
        let mut case_no = 0u64;
        while accepted < config.cases {
            let seed = base.wrapping_add(case_no.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            case_no += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > 20 * config.cases as u64 + 1000 {
                        panic!(
                            "proptest {name}: too many rejected cases \
                             ({rejected} rejects for {accepted} accepted)"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {name} failed (case {case_no}, replay with \
                         PROPTEST_SEED={seed}): {msg}"
                    );
                }
            }
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::runner::run(
                    $config,
                    file!(),
                    stringify!($name),
                    |__proptest_rng| {
                        $(
                            let $arg =
                                $crate::Strategy::sample(&($strat), __proptest_rng);
                        )+
                        let mut __proptest_case = move ||
                            -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body;
                            Ok(())
                        };
                        __proptest_case()
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {{
        if !$cond {
            return ::std::result::Result::Err(
                $crate::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    }};
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), l, r
                );
            }
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left), stringify!($right), l
                );
            }
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "{}\n  both: {:?}",
                    format!($($fmt)+), l
                );
            }
        }
    }};
}

/// Rejects the current case (re-drawn, not failed) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {{
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    }};
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn strategies_stay_in_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let v = Strategy::sample(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(-2.0f64..3.5), &mut rng);
            assert!((-2.0..3.5).contains(&f));
            let set = Strategy::sample(&prop::collection::btree_set(0usize..512, 1..=3), &mut rng);
            assert!((1..=3).contains(&set.len()));
            let arr = Strategy::sample(&prop::array::uniform8(any::<u64>()), &mut rng);
            assert_eq!(arr.len(), 8);
            let v = Strategy::sample(&prop::collection::vec(any::<bool>(), 5), &mut rng);
            assert_eq!(v.len(), 5);
            let idx = Strategy::sample(&any::<prop::sample::Index>(), &mut rng);
            assert!(idx.index(7) < 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro plumbing: args sample, assume rejects, asserts pass.
        #[test]
        fn macro_roundtrip(a in 0u64..100, b in 0u64..100, pair in (0u32..4, 1usize..5)) {
            prop_assume!(a != 99);
            prop_assert!(a < 100);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(pair.1, 0, "vec len is positive");
            if a > 100 {
                return Err(TestCaseError::fail("unreachable"));
            }
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_property_panics_with_seed() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]

            #[allow(unused)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
